package core

import (
	"testing"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// oneBitMonoid builds the M_1bit machine of Figure 1.
func oneBitMonoid(t testing.TB) *monoid.Monoid {
	t.Helper()
	alpha := dfa.NewAlphabet("g", "k")
	d := dfa.NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	m, err := monoid.Build(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// privMonoid builds the Figure 3 privilege machine.
func privMonoid(t testing.TB) *monoid.Monoid {
	t.Helper()
	alpha := dfa.NewAlphabet("seteuid0", "seteuidN", "execl")
	d := dfa.NewDFA(alpha, 3, 0)
	s0, _ := alpha.Lookup("seteuid0")
	sN, _ := alpha.Lookup("seteuidN")
	ex, _ := alpha.Lookup("execl")
	d.SetTransition(0, s0, 1)
	d.SetTransition(1, sN, 0)
	d.SetTransition(1, ex, 2)
	d.SetAccept(2)
	m, err := monoid.Build(d.CompleteSelfLoop(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func annotOf(m *monoid.Monoid, names ...string) Annot {
	f, ok := m.FuncOfNames(names...)
	if !ok {
		panic("unknown symbol")
	}
	return Annot(f)
}

// TestExample24 reproduces Example 2.4 and its §3.1 solved form and §3.2
// entailment query end to end.
func TestExample24(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)

	s := NewSystem(alg, sig, Options{})
	W, X, Y, Z := s.Var("W"), s.Var("X"), s.Var("Y"), s.Var("Z")
	fg := annotOf(mon, "g")
	ident := alg.Identity()

	cNode := s.Constant(cCons)
	oW := s.Cons(oCons, W)
	oY := s.Cons(oCons, Y)

	s.AddLower(cNode, W, fg) // c^α ⊆^g W
	s.AddLower(oW, X, fg)    // o^β(W) ⊆^g X
	s.AddUpper(X, oY, ident) // X ⊆ o^γ(Y)
	s.AddLower(oY, Z, ident) // o^γ(Y) ⊆ Z
	s.Solve()

	if !s.Consistent() {
		t.Fatalf("unexpected clashes: %v", s.Clashes())
	}

	// Solved form (§3.1): the derived transitive constraint c^α ⊆^{fg} Y,
	// via W ⊆^{fg} Y and f_g ∘ f_g = f_g.
	gotY := s.ConstAnnots(cNode, Y)
	if len(gotY) != 1 || gotY[0] != fg {
		t.Errorf("c's annotations at Y = %v, want [f_g]", gotY)
	}

	// Least solution (Example 2.4): W, Y = {c^fg}; X, Z = {o^fg(c^fg)}.
	bank := terms.NewBank(sig)
	seeds := []CNode{cNode, oW} // the query's f_ε ⊆ α, f_ε ⊆ β
	cfg := bank.MustMk(cCons, monoid.FuncID(fg))
	ofgcfg := bank.MustMk(oCons, monoid.FuncID(fg), cfg)

	for _, tc := range []struct {
		v    VarID
		name string
		want terms.TermID
	}{
		{W, "W", cfg}, {Y, "Y", cfg}, {X, "X", ofgcfg}, {Z, "Z", ofgcfg},
	} {
		got := s.TermsInSeeded(tc.v, bank, 4, 0, seeds)
		if len(got) != 1 || got[0] != tc.want {
			names := make([]string, len(got))
			for i, g := range got {
				names[i] = bank.String(g, mon)
			}
			t.Errorf("%s = %v, want {%s}", tc.name, names, bank.String(tc.want, mon))
		}
	}

	// §3.2 entailment: C1 ∧ f_ε ⊆ α ∧ f_ε ⊆ β ⊨ o^β(c^α) ⊆^{fg} Z.
	// The left side appended f_g is o^{fg}(c^{fg}).
	if !s.EntailedTermIn(ofgcfg, Z, bank, seeds) {
		t.Error("entailment query of §3.2 should hold")
	}
}

// TestSection63Example reproduces the §6.3 privilege example: the path
// pc^fε ⊆ S1 ⊆^{f0} … ⊆^{f2} S6 implies pc^{f_error} ∈ S6.
func TestSection63Example(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)

	s := NewSystem(alg, sig, Options{})
	S := make([]VarID, 7)
	for i := 1; i <= 6; i++ {
		S[i] = s.Var(string(rune('0'+i)) + "_S")
	}
	pc := s.Constant(pcCons)
	f0 := annotOf(mon, "seteuid0")
	f1 := annotOf(mon, "seteuidN")
	f2 := annotOf(mon, "execl")
	e := alg.Identity()

	s.AddLower(pc, S[1], e) // pc ⊆ S1
	s.AddVar(S[1], S[2], f0)
	s.AddVar(S[2], S[3], e)
	s.AddVar(S[2], S[4], e) // else branch
	s.AddVar(S[3], S[5], f1)
	s.AddVar(S[4], S[5], e)
	s.AddVar(S[5], S[6], f2)
	s.Solve()

	// pc reaches S6 with an accepting annotation (through the else branch)
	// and a non-accepting one (through the seteuid(getuid()) branch).
	if !s.ConstEntailed(pc, S[6]) {
		t.Fatal("violation not detected at S6")
	}
	annots := s.ConstAnnots(pc, S[6])
	if len(annots) != 2 {
		t.Fatalf("pc reaches S6 with %d annotations, want 2", len(annots))
	}
	var acc, nonacc int
	for _, a := range annots {
		if alg.Accepting(a) {
			acc++
		} else {
			nonacc++
		}
	}
	if acc != 1 || nonacc != 1 {
		t.Errorf("accepting/nonaccepting = %d/%d, want 1/1", acc, nonacc)
	}
	// No violation before the execl.
	if s.ConstEntailed(pc, S[5]) {
		t.Error("no violation should be reported at S5")
	}

	// The witness path for the violation runs S1 → S2 → S4 → S5 → S6.
	bad := Annot(-1)
	for _, a := range annots {
		if alg.Accepting(a) {
			bad = a
		}
	}
	steps := s.Witness(S[6], pc, bad)
	if len(steps) != 5 {
		t.Fatalf("witness has %d steps, want 5: %+v", len(steps), steps)
	}
	if steps[0].Var != S[1] || steps[len(steps)-1].Var != S[6] {
		t.Error("witness endpoints wrong")
	}
	if steps[2].Var != S[4] {
		t.Errorf("witness should pass through S4 (the else branch), got %v", steps[2].Var)
	}
}

func TestStructuralRule(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	pair := sig.MustDeclare("pair", 2)

	s := NewSystem(alg, sig, Options{})
	X1, X2, Y1, Y2, V := s.Var("X1"), s.Var("X2"), s.Var("Y1"), s.Var("Y2"), s.Var("V")
	ca := s.Constant(a)
	fg := annotOf(mon, "g")

	s.AddLower(ca, X1, alg.Identity())
	s.AddLower(s.Cons(pair, X1, X2), V, alg.Identity())
	s.AddUpper(V, s.Cons(pair, Y1, Y2), fg)
	s.Solve()

	// Structural rule: X1 ⊆^{fg} Y1 (and X2 ⊆^{fg} Y2): the constant in X1
	// appears in Y1 annotated fg.
	got := s.ConstAnnots(ca, Y1)
	if len(got) != 1 || got[0] != fg {
		t.Errorf("a at Y1 = %v, want [f_g]", got)
	}
	if s.Flows(ca, Y2) {
		t.Error("a should not flow to Y2")
	}
}

func TestClashDetection(t *testing.T) {
	alg := TrivialAlgebra{}
	sig := terms.NewSignature()
	c := sig.MustDeclare("c", 1)
	d := sig.MustDeclare("d", 1)

	s := NewSystem(alg, sig, Options{})
	X, Y, V := s.Var("X"), s.Var("Y"), s.Var("V")
	s.AddLowerE(s.Cons(c, X), V)
	s.AddUpperE(V, s.Cons(d, Y))
	s.Solve()

	if s.Consistent() {
		t.Fatal("c(...) ⊆ d(...) must clash")
	}
	cl := s.Clashes()
	if len(cl) != 1 {
		t.Fatalf("got %d clashes, want 1", len(cl))
	}
	if s.ConsOf(cl[0].Src) != c || s.ConsOf(cl[0].Dst) != d {
		t.Error("clash endpoints wrong")
	}
}

func TestProjectionRule(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	pair := sig.MustDeclare("pair", 2)

	for _, noMerge := range []bool{false, true} {
		s := NewSystem(alg, sig, Options{NoProjMerge: noMerge})
		X1, X2, Y, Z1, Z2 := s.Var("X1"), s.Var("X2"), s.Var("Y"), s.Var("Z1"), s.Var("Z2")
		ca := s.Constant(a)
		fg := annotOf(mon, "g")
		fk := annotOf(mon, "k")

		s.AddLower(ca, X1, alg.Identity())
		s.AddLower(ca, X2, fk)
		s.AddLower(s.Cons(pair, X1, X2), Y, fg)
		// pair^-1(Y) ⊆ Z1 and pair^-2(Y) ⊆^g Z2.
		s.AddProjE(pair, 0, Y, Z1)
		s.AddProj(pair, 1, Y, Z2, fg)
		s.Solve()

		// Z1 gets a with the pair's path annotation fg.
		if got := s.ConstAnnots(ca, Z1); len(got) != 1 || got[0] != fg {
			t.Errorf("noMerge=%v: a at Z1 = %v, want [f_g]", noMerge, got)
		}
		// Z2: a entered X2 with f_k, pair flowed with f_g, projection adds
		// another f_g: k·g·g acts as f_g.
		want := annotOf(mon, "k", "g", "g")
		if got := s.ConstAnnots(ca, Z2); len(got) != 1 || got[0] != want {
			t.Errorf("noMerge=%v: a at Z2 = %v, want [%s]", noMerge, got, alg.String(want))
		}
	}
}

func TestCycleElimination(t *testing.T) {
	alg := TrivialAlgebra{}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)

	run := func(noCE bool) (*System, VarID, CNode) {
		s := NewSystem(alg, sig, Options{NoCycleElim: noCE})
		x, y, z, w := s.Var("x"), s.Var("y"), s.Var("z"), s.Var("w")
		ca := s.Constant(a)
		s.AddVarE(x, y)
		s.AddVarE(y, z)
		s.AddVarE(z, x) // ε-cycle x→y→z→x
		s.AddVarE(z, w)
		s.AddLowerE(ca, y)
		s.Solve()
		return s, w, ca
	}
	sOn, w, ca := run(false)
	if sOn.Stats().Collapsed == 0 {
		t.Error("cycle elimination should collapse the ε-cycle")
	}
	if !sOn.Flows(ca, w) {
		t.Error("flow through collapsed cycle lost")
	}
	sOff, w2, ca2 := run(true)
	if sOff.Stats().Collapsed != 0 {
		t.Error("NoCycleElim should prevent collapsing")
	}
	if !sOff.Flows(ca2, w2) {
		t.Error("flow lost without cycle elimination")
	}
}

// Cycle elimination must not collapse cycles with non-identity
// annotations, and annotated self-loops must saturate rather than loop.
func TestAnnotatedCycleSaturates(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)

	s := NewSystem(alg, sig, Options{})
	x, y := s.Var("x"), s.Var("y")
	ca := s.Constant(a)
	fg := annotOf(mon, "g")
	fk := annotOf(mon, "k")
	s.AddLower(ca, x, alg.Identity())
	s.AddVar(x, y, fg)
	s.AddVar(y, x, fk) // annotated cycle
	s.Solve()

	if s.Stats().Collapsed != 0 {
		t.Error("annotated cycle must not be collapsed")
	}
	// At x: ε (seed), and gk, gkgk, … all equal f_k: exactly {ε, f_k}.
	if got := s.ConstAnnots(ca, x); len(got) != 2 {
		t.Errorf("annotations at x = %v, want 2 distinct", got)
	}
	// At y: g and kg-cycles: {f_g} only (g, gkg=g, …).
	if got := s.ConstAnnots(ca, y); len(got) != 1 || got[0] != fg {
		t.Errorf("annotations at y = %v, want [f_g]", got)
	}
}

func TestOnlineSolving(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)

	s := NewSystem(alg, sig, Options{})
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, a)
	s.Solve()
	if s.Flows(pc, c) {
		t.Fatal("premature flow")
	}
	// Add the rest online: later constraints must compose with earlier
	// facts (the bidirectional/online property of §5.1).
	s.AddVar(a, b, annotOf(mon, "seteuid0"))
	s.Solve()
	s.AddVar(b, c, annotOf(mon, "execl"))
	s.Solve()
	if !s.ConstEntailed(pc, c) {
		t.Error("online solving lost the violation")
	}
}

func TestPNReachUnmatchedCall(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	o1 := sig.MustDeclare("o1", 1)

	s := NewSystem(alg, sig, Options{})
	sMain, fEntry, fBody := s.Var("Smain"), s.Var("Fentry"), s.Var("Fbody")
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, sMain)
	s.AddVar(sMain, sMain, alg.Identity()) // harmless
	// Call: o1(Smain) ⊆ Fentry; the callee executes seteuid0 then execl
	// and never returns.
	s.AddLowerE(s.Cons(o1, sMain), fEntry)
	s.AddVar(fEntry, fBody, annotOf(mon, "seteuid0", "execl"))
	s.Solve()

	// Matched-only query: pc does not (top-level) reach Fbody.
	if s.Flows(pc, fBody) {
		t.Error("pc should not reach Fbody at top level")
	}
	// PN query: pc occurs inside o1(...) at Fbody with the violating word.
	pn := s.PNReach(pc)
	a, ok := pn.AcceptingAt(fBody)
	if !ok {
		t.Fatal("PN reachability missed the unreturned-call violation")
	}
	if !alg.Accepting(a) {
		t.Error("annotation should be accepting")
	}
	// Trace: seed at Smain, wrap through o1, then to Fbody.
	steps := pn.Trace(fBody, a)
	if len(steps) < 2 {
		t.Fatalf("trace too short: %+v", steps)
	}
	if steps[len(steps)-1].Var != fBody {
		t.Error("trace should end at Fbody")
	}
}

func TestPNReachMatchedCallReturn(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	o1 := sig.MustDeclare("o1", 1)

	s := NewSystem(alg, sig, Options{})
	sCall, fEntry, fExit, sRet := s.Var("Scall"), s.Var("Fentry"), s.Var("Fexit"), s.Var("Sret")
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, sCall)
	s.AddLowerE(s.Cons(o1, sCall), fEntry)
	s.AddVar(fEntry, fExit, annotOf(mon, "seteuid0"))
	s.AddProjE(o1, 0, fExit, sRet)
	s.Solve()

	// The matched return derives Scall ⊆^{f0} Sret: pc is at Sret with f0
	// at top level (no PN needed).
	got := s.ConstAnnots(pc, sRet)
	if len(got) != 1 || got[0] != annotOf(mon, "seteuid0") {
		t.Errorf("pc at Sret = %v, want [f_0]", got)
	}
	// PN agrees and adds nothing extra at Sret.
	pn := s.PNReach(pc)
	if ann := pn.At(sRet); len(ann) != 1 || ann[0] != got[0] {
		t.Errorf("PN at Sret = %v, want %v", ann, got)
	}
}

func TestHashConsing(t *testing.T) {
	alg := TrivialAlgebra{}
	sig := terms.NewSignature()
	c := sig.MustDeclare("c", 1)

	s := NewSystem(alg, sig, Options{})
	x := s.Var("x")
	if s.Cons(c, x) != s.Cons(c, x) {
		t.Error("hash-consing should share nodes")
	}
	s2 := NewSystem(alg, sig, Options{NoHashCons: true})
	x2 := s2.Var("x")
	if s2.Cons(c, x2) == s2.Cons(c, x2) {
		t.Error("NoHashCons should create fresh nodes")
	}
}

func TestFreshAndNames(t *testing.T) {
	s := NewSystem(TrivialAlgebra{}, terms.NewSignature(), Options{})
	v := s.Var("v")
	if s.Var("v") != v {
		t.Error("Var must intern by name")
	}
	f1, f2 := s.Fresh("t"), s.Fresh("t")
	if f1 == f2 {
		t.Error("Fresh must be unique")
	}
	if s.VarName(v) != "v" {
		t.Error("VarName wrong")
	}
}

func TestConsString(t *testing.T) {
	sig := terms.NewSignature()
	c0 := sig.MustDeclare("k", 0)
	c2 := sig.MustDeclare("p", 2)
	s := NewSystem(TrivialAlgebra{}, sig, Options{})
	x, y := s.Var("x"), s.Var("y")
	if got := s.ConsString(s.Constant(c0)); got != "k" {
		t.Errorf("ConsString = %q", got)
	}
	if got := s.ConsString(s.Cons(c2, x, y)); got != "p(x,y)" {
		t.Errorf("ConsString = %q", got)
	}
}

// Resolution terminates on a dense annotated system (Lemma 3.1); the
// adversarial machine makes the annotation domain large but finite.
func TestTerminationAdversarial(t *testing.T) {
	mon, err := monoid.Build(monoid.Adversarial(3), 0) // 27 functions
	if err != nil {
		t.Fatal(err)
	}
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)

	s := NewSystem(alg, sig, Options{})
	const n = 8
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	rot := annotOf(mon, "rotate")
	swp := annotOf(mon, "swap")
	mrg := annotOf(mon, "merge")
	ca := s.Constant(a)
	s.AddLowerE(ca, vars[0])
	for i := 0; i < n; i++ {
		s.AddVar(vars[i], vars[(i+1)%n], rot)
		s.AddVar(vars[i], vars[(i+2)%n], swp)
		s.AddVar(vars[i], vars[(i+3)%n], mrg)
	}
	s.Solve()
	// Every var sees the constant with at most |F| annotations.
	for _, v := range vars {
		if got := len(s.ConstAnnots(ca, v)); got == 0 || got > mon.Size() {
			t.Fatalf("annotation count %d out of range (|F|=%d)", got, mon.Size())
		}
	}
}
