package core

import (
	"testing"

	"rasc/internal/terms"
)

// N-paths: a value originating inside a callee escapes through an
// unmatched return (a projection crossed by a top-level fact).
func TestPNUnmatchedReturn(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)
	o1 := sig.MustDeclare("o1", 1)

	s := NewSystem(alg, sig, Options{})
	ret, caller := s.Var("FexitBody"), s.Var("CallerRet")
	v := s.Constant(val)
	// The callee produces val at its exit; the call site projects the
	// exit. val is never wrapped (it did not come from the caller).
	s.AddLower(v, ret, annotOf(mon, "seteuid0"))
	s.AddProjE(o1, 0, ret, caller)
	s.Solve()

	// Matched-only: nothing flows (no o1-term contains val).
	if s.Flows(v, caller) {
		t.Fatal("val should not reach caller at top level")
	}
	// PN: the unmatched return carries it out with its annotation.
	pn := s.PNReach(v)
	got := pn.At(caller)
	if len(got) != 1 || got[0] != annotOf(mon, "seteuid0") {
		t.Fatalf("PN at caller = %v, want [f_0]", got)
	}
}

// The N*-M-P* discipline: after a wrap (unmatched call), no more
// unmatched returns may be taken.
func TestPNDisciplineNoPopAfterPush(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)
	o1 := sig.MustDeclare("o1", 1)
	o2 := sig.MustDeclare("o2", 1)

	s := NewSystem(alg, sig, Options{})
	a, b, c := s.Var("A"), s.Var("B"), s.Var("C")
	v := s.Constant(val)
	s.AddLowerE(v, a)
	// Wrap into o1 (unmatched call): o1(A) ⊆ B.
	s.AddLowerE(s.Cons(o1, a), b)
	// An unrelated projection on B for a DIFFERENT constructor o2.
	s.AddProjE(o2, 0, b, c)
	s.Solve()

	pn := s.PNReach(v)
	// val occurs (wrapped) at B.
	if len(pn.At(b)) == 0 {
		t.Fatal("val should occur at B inside o1")
	}
	// A P-phase fact must not cross the projection: C stays empty.
	if len(pn.At(c)) != 0 {
		t.Errorf("PN at C = %v, want none (no pops after pushes)", pn.At(c))
	}
}

// But a pop before any push is allowed, and matched pairs in between are
// fine: N then matched then P.
func TestPNPopThenMatchedThenPush(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)
	oRet := sig.MustDeclare("oRet", 1)
	oCall := sig.MustDeclare("oCall", 1)

	s := NewSystem(alg, sig, Options{})
	inner, escaped, wrapped := s.Var("Inner"), s.Var("Escaped"), s.Var("Wrapped")
	v := s.Constant(val)
	s.AddLowerE(v, inner)
	// N step: unmatched return out of the original context.
	s.AddProj(oRet, 0, inner, escaped, annotOf(mon, "seteuid0"))
	// P step: unmatched call into a new context.
	s.AddLower(s.Cons(oCall, escaped), wrapped, annotOf(mon, "execl"))
	s.Solve()

	pn := s.PNReach(v)
	ann := pn.At(wrapped)
	if len(ann) != 1 {
		t.Fatalf("PN at Wrapped = %v, want one annotation", ann)
	}
	// The composed word seteuid0·execl is accepting.
	if !alg.Accepting(ann[0]) {
		t.Error("composed N-then-P word should be accepting")
	}
	// And the trace records both the pop and the wrap.
	steps := pn.Trace(wrapped, ann[0])
	var pops, wraps int
	for _, st := range steps {
		if st.Popped {
			pops++
		}
		if st.Wrapped >= 0 {
			wraps++
		}
	}
	if pops != 1 || wraps != 1 {
		t.Errorf("trace pops=%d wraps=%d, want 1 and 1: %+v", pops, wraps, steps)
	}
}

// N-phase facts keep flowing along ordinary edges after a pop.
func TestPNEdgesAfterPop(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)
	o1 := sig.MustDeclare("o1", 1)

	s := NewSystem(alg, sig, Options{})
	a, b, c := s.Var("A"), s.Var("B"), s.Var("C")
	v := s.Constant(val)
	s.AddLowerE(v, a)
	s.AddProjE(o1, 0, a, b)           // pop
	s.AddVar(b, c, annotOf(mon, "g")) // then an ordinary edge
	s.Solve()

	pn := s.PNReach(v)
	ann := pn.At(c)
	if len(ann) != 1 || ann[0] != annotOf(mon, "g") {
		t.Errorf("PN at C = %v, want [f_g]", ann)
	}
	if _, acc := pn.AcceptingAt(c); !acc {
		t.Error("g is accepting for the 1-bit machine")
	}
}

// PN facts deduplicate across the two phases in At().
func TestPNPhaseDedup(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)

	s := NewSystem(alg, sig, Options{})
	a := s.Var("A")
	v := s.Constant(val)
	s.AddLowerE(v, a)
	s.Solve()
	pn := s.PNReach(v)
	if got := pn.At(a); len(got) != 1 {
		t.Errorf("At = %v, want one entry", got)
	}
	if got := pn.Facts(); len(got) != 1 {
		t.Errorf("Facts = %v, want one", got)
	}
}

func TestPNAcceptingList(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)

	s := NewSystem(alg, sig, Options{})
	a, b := s.Var("A"), s.Var("B")
	v := s.Constant(val)
	s.AddLowerE(v, a)
	s.AddVar(a, b, annotOf(mon, "g"))
	s.Solve()
	pn := s.PNReach(v)
	acc := pn.Accepting()
	if len(acc) != 1 {
		t.Fatalf("Accepting = %v, want one fact", acc)
	}
	if s.Rep(acc[0].V) != s.Rep(b) {
		t.Error("accepting fact should be at B")
	}
	if got := pn.Trace(acc[0].V, acc[0].A); len(got) != 2 {
		t.Errorf("trace = %+v, want 2 steps", got)
	}
}

func TestTraceUnknownFact(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	val := sig.MustDeclare("val", 0)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	a := s.Var("A")
	v := s.Constant(val)
	s.AddLowerE(v, a)
	s.Solve()
	pn := s.PNReach(v)
	if got := pn.Trace(a, Annot(999)); got != nil {
		t.Errorf("unknown fact should trace to nil, got %+v", got)
	}
}
