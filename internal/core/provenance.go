package core

// Finding provenance: a rendered form of the witness machinery. The
// solver already records, per derived fact, the edge or merge that
// first produced it (the parent records of addReach) and PN queries
// keep the analogous pnParent per fact; Provenance re-reads those
// structures into an explicit derivation chain from a seed constraint
// to the queried fact. Nothing here adds solver state: with witness
// tracking on (the default), provenance extraction is a pure read, so
// enabling it cannot perturb what the solver derives.
//
// Soundness caveat: parent records keep only the FIRST derivation of
// each fact. The chain is therefore one valid derivation, not the only
// one, and after cycle elimination merged hops carry the merge
// representative rather than the original variable.

// Provenance rule names, one per derivation step kind.
const (
	ProvSeed = "seed" // original lower-bound constraint
	ProvEdge = "edge" // propagated across an annotated variable edge
	ProvWrap = "wrap" // unmatched constructor wrap (PN "call" step)
	ProvPop  = "pop"  // unmatched projection (PN "return" step)
)

// ProvStep is one hop of a derivation chain, oldest first.
type ProvStep struct {
	// Var is the variable the fact held at after this hop.
	Var VarID
	// Annot is the composed annotation at that point.
	Annot Annot
	// Rule is the derivation rule that produced the hop (Prov* above).
	Rule string
	// Via is the constructor expression wrapped through on a ProvWrap
	// hop, -1 otherwise.
	Via CNode
}

// ProvFromTrace renders a witness trace (as returned by Witness or
// PNResult.Trace, oldest first) into a derivation chain. Clients that
// already hold trace steps can render them without re-querying.
func ProvFromTrace(steps []TraceStep) []ProvStep {
	if len(steps) == 0 {
		return nil
	}
	out := make([]ProvStep, len(steps))
	for i, st := range steps {
		rule := ProvEdge
		switch {
		case i == 0:
			rule = ProvSeed
		case st.Wrapped >= 0:
			rule = ProvWrap
		case st.Popped:
			rule = ProvPop
		}
		out[i] = ProvStep{Var: st.Var, Annot: st.Annot, Rule: rule, Via: st.Wrapped}
	}
	return out
}

// Provenance returns the derivation chain for the PN fact (v, a),
// oldest first: how the queried constant came to occur at v with
// annotation a. Returns nil for an unknown fact or when witness
// tracking is disabled (Options.NoWitness).
func (r *PNResult) Provenance(v VarID, a Annot) []ProvStep {
	return ProvFromTrace(r.Trace(v, a))
}

// ProvenanceOf returns the derivation chain for the top-level reach
// fact (cn, a) at v, oldest first. Returns nil for an unknown fact or
// when witness tracking is disabled.
func (s *System) ProvenanceOf(v VarID, cn CNode, a Annot) []ProvStep {
	return ProvFromTrace(s.Witness(v, cn, a))
}
