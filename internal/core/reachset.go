package core

// reachFact is one (constructor expression, annotation) fact derived at a
// variable, with the parent that first derived it.
type reachFact struct {
	cn  CNode
	a   Annot
	par parent
}

// reachSet stores a variable's derived facts as an insertion-ordered
// slice plus an open-addressed index, replacing the former
// map[reachKey]parent. The layout buys three things on the solver's
// hottest path: lookups that never allocate, iteration that is
// deterministic (witness parents no longer depend on map order), and a
// representation that a Fork can snapshot with two slice headers.
//
// The zero value is an empty set. A forked System marks its sets shared;
// the first insert after a fork copies the index (the facts slice is
// capacity-clipped at fork time, so appending reallocates on its own).
type reachSet struct {
	facts  []reachFact
	table  []int32 // power-of-two open addressing; fact index + 1, 0 = empty
	shared bool
}

func reachHash(cn CNode, a Annot) uint32 {
	h := uint32(cn)*0x9e3779b1 ^ uint32(a)*0x85ebca77
	return h ^ h>>15
}

func (r *reachSet) size() int { return len(r.facts) }

// lookup returns the recorded parent of (cn, a), if present.
func (r *reachSet) lookup(cn CNode, a Annot) (parent, bool) {
	if len(r.table) == 0 {
		return parent{}, false
	}
	mask := uint32(len(r.table) - 1)
	for i := reachHash(cn, a) & mask; ; i = (i + 1) & mask {
		slot := r.table[i]
		if slot == 0 {
			return parent{}, false
		}
		if f := &r.facts[slot-1]; f.cn == cn && f.a == a {
			return f.par, true
		}
	}
}

func (r *reachSet) has(cn CNode, a Annot) bool {
	_, ok := r.lookup(cn, a)
	return ok
}

// insert adds (cn, a) with parent par, reporting whether it was absent.
func (r *reachSet) insert(cn CNode, a Annot, par parent) bool {
	if r.has(cn, a) {
		return false
	}
	if r.shared {
		// The index is updated in place, so a fork must stop sharing it
		// with its frozen base before the first write.
		table := make([]int32, len(r.table))
		copy(table, r.table)
		r.table = table
		r.shared = false
	}
	if 4*(len(r.facts)+1) > 3*len(r.table) {
		r.grow()
	}
	r.facts = append(r.facts, reachFact{cn, a, par})
	mask := uint32(len(r.table) - 1)
	i := reachHash(cn, a) & mask
	for r.table[i] != 0 {
		i = (i + 1) & mask
	}
	r.table[i] = int32(len(r.facts))
	return true
}

func (r *reachSet) grow() {
	n := 2 * len(r.table)
	if n == 0 {
		n = 8
	}
	r.table = make([]int32, n)
	mask := uint32(n - 1)
	for idx := range r.facts {
		f := &r.facts[idx]
		i := reachHash(f.cn, f.a) & mask
		for r.table[i] != 0 {
			i = (i + 1) & mask
		}
		r.table[i] = int32(idx + 1)
	}
}
