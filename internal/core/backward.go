package core

import (
	"fmt"

	"rasc/internal/monoid"
)

// This file implements the backward unidirectional solving strategy
// sketched in §5 ("the construction for the backwards case is symmetric,
// using a left congruence in place of a right congruence"). Backward
// solving pushes upper-bound sinks toward lower-bound sources. Under the
// left congruence, two words are identified when they carry every state
// into acceptance identically:
//
//	w ≡_l w'  ⇔  ∀x. xw ∈ L(M) iff xw' ∈ L(M)
//
// so a derived backward annotation is fully described by the set
// {s | δ(w, s) ∈ S_accept}, a bitset over states. We implement the solver
// for the atomic fragment (variable-variable constraints plus constant
// bounds), which is what CFG-shaped dataflow clients use; constructor
// structure in backward mode would require the same function-valued
// segment tracking as the forward solver and is handled there.

// BackwardResult is the result of a backward solve for a set of query
// targets.
type BackwardResult struct {
	sys *System
	mon *monoid.Monoid
	// bits[target][v] = set of states s such that some path word w from v
	// to target has δ(w, s) accepting.
	bits []map[VarID]uint64
	// targets in query order.
	targets []VarID
	nFacts  int
}

// SolveBackward runs the backward unidirectional solver for the given
// query target variables. It requires the FuncAlgebra, a machine with at
// most 64 states, and a constraint system in the atomic fragment
// (variable-variable edges and constant lower/upper bounds).
func (s *System) SolveBackward(targets []VarID) (*BackwardResult, error) {
	fa, ok := s.Alg.(FuncAlgebra)
	if !ok {
		return nil, fmt.Errorf("core: backward solving requires the representative-function algebra")
	}
	if fa.Mon.M.NumStates > 64 {
		return nil, fmt.Errorf("core: backward solving supports at most 64 machine states, have %d", fa.Mon.M.NumStates)
	}
	// Reverse adjacency over the raw var-var constraints.
	pred := make([][]edge, len(s.vars))
	for _, rc := range s.raw {
		switch rc.kind {
		case rawVarVar:
			pred[rc.y] = append(pred[rc.y], edge{rc.x, rc.a})
		case rawLower, rawUpper:
			if len(s.cons[rc.cn].args) > 0 {
				return nil, fmt.Errorf("core: backward solving implements the atomic fragment; constructor %s has arity %d (use SolveForward or Solve)",
					s.Sig.Name(s.cons[rc.cn].cons), len(s.cons[rc.cn].args))
			}
		case rawProj:
			return nil, fmt.Errorf("core: backward solving implements the atomic fragment; projection constraints unsupported")
		}
	}

	mon := fa.Mon
	// acceptBits: the left class of ε.
	var acceptBits uint64
	for st := 0; st < mon.M.NumStates; st++ {
		if mon.M.Accept[st] {
			acceptBits |= 1 << uint(st)
		}
	}

	r := &BackwardResult{sys: s, mon: mon, targets: targets}
	for _, t := range targets {
		cur := make(map[VarID]uint64)
		type item struct {
			v VarID
			b uint64
		}
		var work []item
		add := func(v VarID, b uint64) {
			if b == 0 {
				return
			}
			old := cur[v]
			nb := old | b
			if nb == old {
				return
			}
			cur[v] = nb
			r.nFacts++
			work = append(work, item{v, nb})
		}
		add(t, acceptBits)
		for len(work) > 0 {
			it := work[len(work)-1]
			work = work[:len(work)-1]
			if cur[it.v] != it.b {
				continue // superseded
			}
			for _, e := range pred[it.v] {
				// Crossing x ⊆^g y backward: s is good at x iff g(s) is
				// good at y.
				g := mon.Func(monoid.FuncID(e.a))
				var nb uint64
				for st := 0; st < mon.M.NumStates; st++ {
					if it.b&(1<<uint(g[st])) != 0 {
						nb |= 1 << uint(st)
					}
				}
				add(e.to, nb)
			}
		}
		r.bits = append(r.bits, cur)
	}
	return r, nil
}

// ConstEntailed reports whether constant cn (seeded by its lower-bound
// constraints) reaches target with a word in L(M): some seed's
// start-image state is in the target's backward bitset.
func (r *BackwardResult) ConstEntailed(cn CNode, target VarID) bool {
	ti := r.targetIndex(target)
	if ti < 0 {
		return false
	}
	for _, rc := range r.sys.raw {
		if rc.kind != rawLower || rc.cn != cn {
			continue
		}
		st := r.mon.Apply(monoid.FuncID(rc.a), r.mon.M.Start)
		if r.bits[ti][rc.y]&(1<<uint(st)) != 0 {
			return true
		}
	}
	return false
}

// BitsAt returns the backward bitset of v for the given target.
func (r *BackwardResult) BitsAt(target, v VarID) uint64 {
	ti := r.targetIndex(target)
	if ti < 0 {
		return 0
	}
	return r.bits[ti][v]
}

func (r *BackwardResult) targetIndex(t VarID) int {
	for i, x := range r.targets {
		if x == t {
			return i
		}
	}
	return -1
}

// Facts returns the number of distinct derived facts (bitset refinements).
func (r *BackwardResult) Facts() int { return r.nFacts }
