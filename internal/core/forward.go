package core

import (
	"fmt"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// This file implements the forward unidirectional solving strategy of §5.
// A forward solver only pushes lower-bound sources toward upper-bound
// sinks; it cannot solve constraint fragments separately or online, but in
// exchange the annotations it derives for *constants* live in the coarser
// right congruence F_M^≡r — words are distinguished only by the state
// δ(w, s0) they reach — so each (constant, variable) pair carries at most
// |S| derived annotations instead of up to |F_M^≡| (which can be |S|^|S|,
// Figure 2). Queries only ever evaluate annotations at s0, so the quotient
// is lossless for entailment.
//
// Compound constructor sources still carry their segment's representative
// function, because the structural and projection rules must compose that
// segment onto component flows (the g ∘ f of §5, with g ∈ F_M^≡ from the
// original constraints and the result re-quotiented for constants).

// ForwardResult is the result of a forward solve.
type ForwardResult struct {
	sys *System
	mon *monoid.Monoid

	// kreach[v]: constant facts keyed by (constant node, DFA state).
	kreach []map[fwdConstKey]struct{}
	// creach[v]: compound facts keyed by (cons node, segment function).
	creach []map[reachKey]struct{}

	edges    []map[edgeKey]struct{} // derived+original edges per source var
	outEdges [][]edge
	sinks    [][]sinkRef
	projs    [][]projRef

	clashes []Clash
	work    []fwdItem

	// demand restricts constant propagation to these nodes (nil = all).
	demand map[CNode]bool

	nFacts int
}

type fwdConstKey struct {
	cn CNode
	st dfa.State
}

type fwdItem struct {
	v     VarID
	cn    CNode
	isK   bool
	st    dfa.State     // constant facts
	f     monoid.FuncID // compound facts
	arity int
}

// SolveForward runs the forward unidirectional solver over the system's
// recorded constraints. It requires the FuncAlgebra (parametric
// substitution environments are only supported bidirectionally). demand,
// if non-nil, restricts constant propagation to the given constants
// (demand-driven solving, §5.1). The bidirectional solver's state is not
// consulted or modified.
func (s *System) SolveForward(demand []CNode) (*ForwardResult, error) {
	fa, ok := s.Alg.(FuncAlgebra)
	if !ok {
		return nil, fmt.Errorf("core: forward solving requires the representative-function algebra")
	}
	n := len(s.vars)
	r := &ForwardResult{
		sys:      s,
		mon:      fa.Mon,
		kreach:   make([]map[fwdConstKey]struct{}, n),
		creach:   make([]map[reachKey]struct{}, n),
		edges:    make([]map[edgeKey]struct{}, n),
		outEdges: make([][]edge, n),
		sinks:    make([][]sinkRef, n),
		projs:    make([][]projRef, n),
	}
	if demand != nil {
		r.demand = make(map[CNode]bool, len(demand))
		for _, cn := range demand {
			r.demand[cn] = true
		}
	}
	for i := range r.kreach {
		r.kreach[i] = map[fwdConstKey]struct{}{}
		r.creach[i] = map[reachKey]struct{}{}
		r.edges[i] = map[edgeKey]struct{}{}
	}

	// Index the raw constraints.
	for _, rc := range s.raw {
		switch rc.kind {
		case rawVarVar:
			r.addEdge(rc.x, rc.y, rc.a)
		case rawUpper:
			r.sinks[rc.x] = append(r.sinks[rc.x], sinkRef{rc.cn, rc.a})
		case rawProj:
			r.projs[rc.x] = append(r.projs[rc.x], projRef{rc.cons, rc.idx, rc.y, rc.a})
		}
	}
	// Seeds last, so sinks/projections are in place (a forward solver
	// processes the whole constraint graph at once, §5.1).
	for _, rc := range s.raw {
		if rc.kind != rawLower {
			continue
		}
		if len(s.cons[rc.cn].args) == 0 {
			if r.demand == nil || r.demand[rc.cn] {
				r.addConst(rc.y, rc.cn, r.mon.Apply(monoid.FuncID(rc.a), r.mon.M.Start))
			}
		} else {
			r.addCons(rc.y, rc.cn, monoid.FuncID(rc.a))
		}
	}
	r.run()
	return r, nil
}

func (r *ForwardResult) addEdge(x, y VarID, a Annot) {
	k := edgeKey{int32(x), int32(y), a}
	if _, dup := r.edges[x][k]; dup {
		return
	}
	r.edges[x][k] = struct{}{}
	r.outEdges[x] = append(r.outEdges[x], edge{y, a})
	g := monoid.FuncID(a)
	for fk := range r.kreach[x] {
		r.addConst(y, fk.cn, r.mon.Apply(g, fk.st))
	}
	for ck := range r.creach[x] {
		r.addCons(y, ck.cn, r.mon.Then(monoid.FuncID(ck.a), g))
	}
}

func (r *ForwardResult) addConst(v VarID, cn CNode, st dfa.State) {
	if r.sys.opts.PruneDead && !r.mon.CoReachableState(st) {
		return // outside the prefix domain T^{M^pre}
	}
	k := fwdConstKey{cn, st}
	if _, dup := r.kreach[v][k]; dup {
		return
	}
	r.kreach[v][k] = struct{}{}
	r.nFacts++
	r.work = append(r.work, fwdItem{v: v, cn: cn, isK: true, st: st})
}

func (r *ForwardResult) addCons(v VarID, cn CNode, f monoid.FuncID) {
	if r.sys.opts.PruneDead && r.mon.Dead(f) {
		return
	}
	k := reachKey{cn, Annot(f)}
	if _, dup := r.creach[v][k]; dup {
		return
	}
	r.creach[v][k] = struct{}{}
	r.nFacts++
	r.work = append(r.work, fwdItem{v: v, cn: cn, f: f, arity: len(r.sys.cons[cn].args)})
}

func (r *ForwardResult) run() {
	s := r.sys
	for len(r.work) > 0 {
		it := r.work[len(r.work)-1]
		r.work = r.work[:len(r.work)-1]
		out := r.outEdges[it.v]
		sinks := r.sinks[it.v]
		projs := r.projs[it.v]
		if it.isK {
			for _, e := range out {
				r.addConst(e.to, it.cn, r.mon.Apply(monoid.FuncID(e.a), it.st))
			}
			for _, sk := range sinks {
				if s.cons[sk.cn].cons != s.cons[it.cn].cons {
					r.clashes = append(r.clashes, Clash{it.cn, sk.cn, Annot(0)})
				}
			}
			// Constants have no components: projections don't apply.
			continue
		}
		for _, e := range out {
			r.addCons(e.to, it.cn, r.mon.Then(it.f, monoid.FuncID(e.a)))
		}
		cd := s.cons[it.cn]
		for _, sk := range sinks {
			dd := s.cons[sk.cn]
			h := r.mon.Then(it.f, monoid.FuncID(sk.a))
			if cd.cons != dd.cons {
				r.clashes = append(r.clashes, Clash{it.cn, sk.cn, Annot(h)})
				continue
			}
			for i := range cd.args {
				if s.Sig.VarianceOf(cd.cons, i) == terms.Contravariant {
					if h != r.mon.Identity() {
						r.clashes = append(r.clashes, Clash{it.cn, sk.cn, Annot(h)})
						continue
					}
					r.addEdge(dd.args[i], cd.args[i], Annot(h))
					continue
				}
				r.addEdge(cd.args[i], dd.args[i], Annot(h))
			}
		}
		for _, pr := range projs {
			if cd.cons == pr.cons {
				h := r.mon.Then(it.f, monoid.FuncID(pr.a))
				r.addEdge(cd.args[pr.idx], pr.to, Annot(h))
			}
		}
	}
}

// ConstStates returns the F_M^≡r classes (DFA states) with which constant
// cn reaches v.
func (r *ForwardResult) ConstStates(cn CNode, v VarID) []dfa.State {
	var out []dfa.State
	for k := range r.kreach[v] {
		if k.cn == cn {
			out = append(out, k.st)
		}
	}
	return out
}

// ConstEntailed reports whether the constant reaches v with a word in
// L(M): some reached state is accepting.
func (r *ForwardResult) ConstEntailed(cn CNode, v VarID) bool {
	for k := range r.kreach[v] {
		if k.cn == cn && r.mon.M.Accept[k.st] {
			return true
		}
	}
	return false
}

// Flows reports whether cn reaches v with any annotation.
func (r *ForwardResult) Flows(cn CNode, v VarID) bool {
	for k := range r.kreach[v] {
		if k.cn == cn {
			return true
		}
	}
	for k := range r.creach[v] {
		if k.cn == cn {
			return true
		}
	}
	return false
}

// Clashes returns the inconsistencies found during forward solving.
func (r *ForwardResult) Clashes() []Clash { return r.clashes }

// Facts returns the number of distinct derived facts, the solver-work
// measure compared across strategies in the §5 experiments.
func (r *ForwardResult) Facts() int { return r.nFacts }

// VarsWithConst answers the demand-driven query of §5.1: "for what set of
// variables must this constant appear in every solution?" — the variables
// cn reaches, in ascending order.
func (r *ForwardResult) VarsWithConst(cn CNode) []VarID {
	var out []VarID
	for v := range r.kreach {
		for k := range r.kreach[v] {
			if k.cn == cn {
				out = append(out, VarID(v))
				break
			}
		}
	}
	return out
}

// VarsWithConstAccepting restricts VarsWithConst to accepting occurrences
// (the constant is present with a word in L(M)).
func (r *ForwardResult) VarsWithConstAccepting(cn CNode) []VarID {
	var out []VarID
	for v := range r.kreach {
		for k := range r.kreach[v] {
			if k.cn == cn && r.mon.M.Accept[k.st] {
				out = append(out, VarID(v))
				break
			}
		}
	}
	return out
}
