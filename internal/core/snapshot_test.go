package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rasc/internal/snapshot"
)

// encodeSys serializes s into a fresh container.
func encodeSys(t *testing.T, s *System) []byte {
	t.Helper()
	w := snapshot.NewWriter()
	s.EncodeSnapshot(w)
	return w.Finish()
}

// decodeSys loads a container back into a System.
func decodeSys(t *testing.T, data []byte, alg Algebra, opts Options, identityOnly bool) *System {
	t.Helper()
	r, err := snapshot.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSystem(r, alg, opts, identityOnly)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSnapshotRoundTripExact checks the strongest property the format
// offers: a decoded System is structurally indistinguishable from the
// live one — same DOT rendering, same reach hash-table layout slot for
// slot, same stats — and re-encoding it reproduces the original bytes.
func TestSnapshotRoundTripExact(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	r := rand.New(rand.NewSource(7))
	ident := func() Annot { return Annot(mon.Identity()) }
	e := newSysEnv(alg, Options{}, 10, 3)
	e.apply(randomOps(r, 40, 10, 3, ident))
	e.s.Solve()
	e.s.Freeze()

	data := encodeSys(t, e.s)
	dec := decodeSys(t, data, alg, Options{}, true)

	if got, want := dec.Stats(), e.s.Stats(); got != want {
		t.Fatalf("Stats: got %+v want %+v", got, want)
	}
	if got, want := dec.DOT("x"), e.s.DOT("x"); got != want {
		t.Fatalf("DOT mismatch:\n got %s\nwant %s", got, want)
	}
	for v := range e.s.vars {
		lt, dt := e.s.vars[v].reach.table, dec.vars[v].reach.table
		if len(lt) != len(dt) {
			t.Fatalf("v%d: reach table size %d, want %d", v, len(dt), len(lt))
		}
		for i := range lt {
			if lt[i] != dt[i] {
				t.Fatalf("v%d: reach table slot %d is %d, want %d", v, i, dt[i], lt[i])
			}
		}
		if e.s.vars[v].uf != dec.vars[v].uf {
			t.Fatalf("v%d: uf %d, want %d", v, dec.vars[v].uf, e.s.vars[v].uf)
		}
	}
	if !bytes.Equal(encodeSys(t, dec), data) {
		t.Fatal("re-encoding the decoded System does not reproduce the original bytes")
	}
}

// Property: a fork of a decoded identity-only base, layered with
// arbitrary annotated constraints, answers every query exactly as a
// fork of the live base — same annotation sets, same clash list, same
// PN fact discovery order. This is the contract the driver's snapshot
// cache depends on for byte-identical findings.
func TestQuickSnapshotForkEquivalence(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	const nVars, nConsts = 8, 3
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ident := func() Annot { return Annot(mon.Identity()) }
		anyAnnot := func() Annot { return Annot(r.Intn(mon.Size())) }
		baseOps := randomOps(r, 12, nVars, nConsts, ident)
		layerOps := randomOps(r, 10, nVars, nConsts, anyAnnot)

		base := newSysEnv(alg, Options{}, nVars, nConsts)
		base.apply(baseOps)
		base.s.Solve()
		base.s.Freeze()

		data := encodeSys(t, base.s)
		rd, err := snapshot.NewReader(data)
		if err != nil {
			return false
		}
		decoded, err := DecodeSystem(rd, alg, Options{}, true)
		if err != nil {
			return false
		}

		live := base.fork(alg)
		live.apply(layerOps)
		live.s.Solve()

		loaded := &sysEnv{s: decoded.Fork(alg), pair: base.pair, vars: base.vars, consts: base.consts}
		loaded.apply(layerOps)
		loaded.s.Solve()

		if live.s.Stats() != loaded.s.Stats() {
			return false
		}
		for ci := range live.consts {
			for vi := range live.vars {
				if !annotsEqual(
					loaded.s.ConstAnnots(loaded.consts[ci], loaded.vars[vi]),
					live.s.ConstAnnots(live.consts[ci], live.vars[vi])) {
					return false
				}
			}
		}
		lc, dc := live.canonClashes(), loaded.canonClashes()
		if len(lc) != len(dc) {
			return false
		}
		for i := range lc {
			if lc[i] != dc[i] {
				return false
			}
		}
		// Fact discovery order, not just fact sets: witness extraction
		// and finding order depend on it.
		pnLive := live.s.PNReach(live.consts[0]).Facts()
		pnLoaded := loaded.s.PNReach(loaded.consts[0]).Facts()
		if len(pnLive) != len(pnLoaded) {
			return false
		}
		for i := range pnLive {
			if pnLive[i] != pnLoaded[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// An annotated (non-skeleton) System still round-trips when the caller
// does not demand identity-only annotations.
func TestSnapshotAnnotatedRoundTrip(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	r := rand.New(rand.NewSource(3))
	anyAnnot := func() Annot { return Annot(r.Intn(mon.Size())) }
	e := newSysEnv(alg, Options{}, 8, 3)
	e.apply(randomOps(r, 30, 8, 3, anyAnnot))
	e.s.Solve()
	e.s.Freeze()

	data := encodeSys(t, e.s)
	dec := decodeSys(t, data, alg, Options{}, false)
	if dec.Stats() != e.s.Stats() {
		t.Fatalf("Stats: got %+v want %+v", dec.Stats(), e.s.Stats())
	}
	if !bytes.Equal(encodeSys(t, dec), data) {
		t.Fatal("annotated round trip is not byte-stable")
	}

	// The same bytes must be rejected under the skeleton contract.
	rd, err := snapshot.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSystem(rd, alg, Options{}, true); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("identity-only decode of annotated snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotOptionsMismatch(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	e := newSysEnv(alg, Options{}, 4, 2)
	e.s.AddVarE(e.vars[0], e.vars[1])
	e.s.Solve()
	data := encodeSys(t, e.s)
	rd, err := snapshot.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSystem(rd, alg, Options{NoCycleElim: true}, true); err == nil {
		t.Fatal("decode under different Options succeeded")
	}
	rd, err = snapshot.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSystem(rd, alg, Options{CycleBudget: 7}, true); err == nil {
		t.Fatal("decode under different CycleBudget succeeded")
	}
	// The defaulted budget (0 → 64) matches an Options{} encode.
	rd, err = snapshot.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSystem(rd, alg, Options{CycleBudget: 64}, true); err != nil {
		t.Fatalf("decode under explicit default budget: %v", err)
	}
}
