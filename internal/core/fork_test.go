package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rasc/internal/terms"
)

// sysOp is one constraint of a randomly generated system, replayable
// into any System so that monolithic and fork-layered builds see
// byte-identical input.
type sysOp struct {
	kind    int // 0 var-var, 1 cons lower, 2 upper, 3 proj, 4 const lower
	x, y, z int // var indices
	c       int // constant index (kind 4)
	idx     int // projection index (kind 3)
	a       Annot
}

func randomOps(r *rand.Rand, nOps, nVars, nConsts int, annot func() Annot) []sysOp {
	ops := make([]sysOp, nOps)
	for i := range ops {
		ops[i] = sysOp{
			kind: r.Intn(5),
			x:    r.Intn(nVars), y: r.Intn(nVars), z: r.Intn(nVars),
			c: r.Intn(nConsts), idx: r.Intn(2),
			a: annot(),
		}
	}
	return ops
}

// sysEnv binds a System to the shared var/constant layout the ops index.
type sysEnv struct {
	s      *System
	pair   terms.ConsID
	vars   []VarID
	consts []CNode
}

func newSysEnv(alg Algebra, opts Options, nVars, nConsts int) *sysEnv {
	sig := terms.NewSignature()
	s := NewSystem(alg, sig, opts)
	e := &sysEnv{s: s, pair: sig.MustDeclare("pair", 2)}
	for i := 0; i < nVars; i++ {
		e.vars = append(e.vars, s.Fresh("v"))
	}
	for i := 0; i < nConsts; i++ {
		c := sig.MustDeclare(fmt.Sprintf("k%d", i), 0)
		e.consts = append(e.consts, s.Constant(c))
	}
	return e
}

// fork continues the environment on a forked System.
func (e *sysEnv) fork(alg Algebra) *sysEnv {
	f := *e
	f.s = e.s.Fork(alg)
	return &f
}

func (e *sysEnv) apply(ops []sysOp) {
	s := e.s
	for _, op := range ops {
		switch op.kind {
		case 0:
			s.AddVar(e.vars[op.x], e.vars[op.y], op.a)
		case 1:
			s.AddLower(s.Cons(e.pair, e.vars[op.x], e.vars[op.y]), e.vars[op.z], op.a)
		case 2:
			s.AddUpper(e.vars[op.x], s.Cons(e.pair, e.vars[op.y], e.vars[op.z]), op.a)
		case 3:
			s.AddProj(e.pair, op.idx, e.vars[op.x], e.vars[op.y], op.a)
		case 4:
			s.AddLower(e.consts[op.c], e.vars[op.x], op.a)
		}
	}
}

// canonClashes renders the clash set up to solver-internal identity:
// constructor names instead of CNode ids (hash-consing granularity
// differs between variants) and each argument named by the smallest test
// variable of its union-find class (representative choice and cons
// interning relative to cycle collapsing are timing-dependent). Two
// semantically equal clash sets render identically regardless of
// options or fork layering; entries are sorted and deduplicated.
func (e *sysEnv) canonClashes() []string { return e.canonClashesNorm(nil) }

// canonClashesNorm additionally maps each class-minimal test variable
// through norm, so that clash sets from systems with different collapsing
// behaviour (e.g. NoCycleElim) can be compared under one reference
// equivalence.
func (e *sysEnv) canonClashesNorm(norm map[VarID]VarID) []string {
	s := e.s
	classMin := map[VarID]VarID{}
	for _, v := range e.vars {
		r := s.Rep(v)
		if m, ok := classMin[r]; !ok || v < m {
			classMin[r] = v
		}
	}
	render := func(cn CNode) string {
		cd := &s.cons[cn]
		out := s.Sig.Name(cd.cons)
		if len(cd.args) == 0 {
			return out
		}
		out += "("
		for i, a := range cd.args {
			if i > 0 {
				out += ","
			}
			if m, ok := classMin[s.Rep(a)]; ok {
				if n, ok := norm[m]; ok {
					m = n
				}
				out += fmt.Sprint(int(m))
			} else {
				out += "?"
			}
		}
		return out + ")"
	}
	seen := map[string]bool{}
	var out []string
	for _, cl := range s.Clashes() {
		key := render(cl.Src) + " <= " + render(cl.Dst) + " @ " + s.Alg.String(cl.Annot)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// jointNorm canonicalizes test variables under the union of every given
// system's variable classes. Cycle elimination is best-effort — two
// systems at the same semantic fixpoint may collapse different subsets
// of the ε-equivalent variables — so clash sets are only comparable
// after renaming through the joint equivalence.
func jointNorm(envs ...*sysEnv) map[VarID]VarID {
	parent := map[VarID]VarID{}
	var find func(VarID) VarID
	find = func(v VarID) VarID {
		if parent[v] == v {
			return v
		}
		parent[v] = find(parent[v])
		return parent[v]
	}
	for _, v := range envs[0].vars {
		parent[v] = v
	}
	for _, e := range envs {
		byRep := map[VarID]VarID{}
		for _, v := range e.vars {
			r := e.s.Rep(v)
			if first, ok := byRep[r]; ok {
				a, b := find(first), find(v)
				if a != b {
					if b < a {
						a, b = b, a
					}
					parent[b] = a
				}
			} else {
				byRep[r] = v
			}
		}
	}
	norm := map[VarID]VarID{}
	for _, v := range envs[0].vars {
		norm[v] = find(v)
	}
	return norm
}

func annotsEqual(a, b []Annot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: solving a base and layering annotated constraints on a Fork
// answers every query exactly as one monolithic system that saw all
// constraints — the correctness contract of the driver's shared-skeleton
// reuse.
func TestQuickForkEquivalentToMonolithic(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	const nVars, nConsts = 8, 3
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ident := func() Annot { return Annot(mon.Identity()) }
		anyAnnot := func() Annot { return Annot(r.Intn(mon.Size())) }
		baseOps := randomOps(r, 12, nVars, nConsts, ident)
		layerOps := randomOps(r, 10, nVars, nConsts, anyAnnot)

		mono := newSysEnv(alg, Options{}, nVars, nConsts)
		mono.apply(baseOps)
		mono.apply(layerOps)
		mono.s.Solve()

		base := newSysEnv(alg, Options{}, nVars, nConsts)
		base.apply(baseOps)
		base.s.Solve()
		base.s.Freeze()
		layered := base.fork(alg)
		layered.apply(layerOps)
		layered.s.Solve()

		for ci := range mono.consts {
			for vi := range mono.vars {
				want := mono.s.ConstAnnots(mono.consts[ci], mono.vars[vi])
				got := layered.s.ConstAnnots(layered.consts[ci], layered.vars[vi])
				if !annotsEqual(got, want) {
					return false
				}
			}
		}
		norm := jointNorm(mono, layered)
		wantClash := mono.canonClashesNorm(norm)
		gotClash := layered.canonClashesNorm(norm)
		if len(wantClash) != len(gotClash) {
			return false
		}
		for i := range wantClash {
			if wantClash[i] != gotClash[i] {
				return false
			}
		}
		// PN reachability through the fork agrees too.
		pnWant := mono.s.PNReach(mono.consts[0])
		pnGot := layered.s.PNReach(layered.consts[0])
		for vi := range mono.vars {
			a := append([]Annot(nil), pnWant.At(mono.vars[vi])...)
			b := append([]Annot(nil), pnGot.At(layered.vars[vi])...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if !annotsEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the solver optimizations are transparent. Replaying one
// random constraint stream into systems with each optimization disabled
// (and with dead-annotation pruning enabled — the one-bit monoid has no
// dead elements, so pruning must be an exact no-op) yields the same
// consistency verdict, constant-reachability annotation sets and clash
// set as the fully optimized reference.
func TestQuickDifferentialOptions(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	const nVars, nConsts = 8, 3
	variants := []Options{
		{NoCycleElim: true},
		{NoProjMerge: true},
		{NoHashCons: true},
		{NoCycleElim: true, NoProjMerge: true, NoHashCons: true, NoWitness: true},
		{PruneDead: true},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		anyAnnot := func() Annot { return Annot(r.Intn(mon.Size())) }
		ops := randomOps(r, 25, nVars, nConsts, anyAnnot)

		ref := newSysEnv(alg, Options{}, nVars, nConsts)
		ref.apply(ops)
		ref.s.Solve()
		for _, opt := range variants {
			e := newSysEnv(alg, opt, nVars, nConsts)
			e.apply(ops)
			e.s.Solve()
			if e.s.Consistent() != ref.s.Consistent() {
				return false
			}
			// Each variant may collapse a different subset of the
			// ε-equivalent variables (NoCycleElim collapses none), so the
			// clash comparison renders both sides under their joint classes.
			norm := jointNorm(ref, e)
			refClash := ref.canonClashesNorm(norm)
			for ci := range ref.consts {
				for vi := range ref.vars {
					want := ref.s.ConstAnnots(ref.consts[ci], ref.vars[vi])
					got := e.s.ConstAnnots(e.consts[ci], e.vars[vi])
					if !annotsEqual(got, want) {
						return false
					}
				}
			}
			gotClash := e.canonClashesNorm(norm)
			if len(gotClash) != len(refClash) {
				return false
			}
			for i := range refClash {
				if gotClash[i] != refClash[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// A fork never writes back: after heavy mutation of the fork, the base's
// statistics, derived facts and consistency are untouched.
func TestForkIsolation(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	base := newSysEnv(alg, Options{}, 6, 2)
	r := rand.New(rand.NewSource(7))
	base.apply(randomOps(r, 10, 6, 2, func() Annot { return Annot(mon.Identity()) }))
	base.s.Solve()
	base.s.Freeze()

	before := base.s.Stats()
	snapshot := map[int][]Annot{}
	for vi, v := range base.vars {
		snapshot[vi] = base.s.ConstAnnots(base.consts[0], v)
	}

	f := base.fork(alg)
	g, _ := mon.SymbolFuncByName("g")
	for i := 0; i+1 < len(f.vars); i++ {
		f.s.AddVar(f.vars[i], f.vars[i+1], Annot(g))
		f.s.AddLower(f.consts[1], f.vars[i], Annot(g))
	}
	// A clash in the fork must not leak into the base either.
	f.s.AddUpper(f.vars[0], f.s.Cons(f.pair, f.vars[1], f.vars[2]), Annot(mon.Identity()))
	f.s.Solve()

	if got := base.s.Stats(); got != before {
		t.Errorf("base stats changed after fork mutation: %+v -> %+v", before, got)
	}
	for vi, v := range base.vars {
		if !annotsEqual(base.s.ConstAnnots(base.consts[0], v), snapshot[vi]) {
			t.Errorf("base ConstAnnots changed at var %d", vi)
		}
	}
	if got := len(base.s.Clashes()); got != before.Clashes {
		t.Errorf("fork clash leaked into base: %d -> %d", before.Clashes, got)
	}
}

// Concurrent forks of one frozen base, each layering its own constraints,
// stay independent (exercised under -race in CI).
func TestConcurrentForks(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	base := newSysEnv(alg, Options{}, 16, 4)
	for i := 0; i+1 < len(base.vars); i++ {
		base.s.AddVarE(base.vars[i], base.vars[i+1])
	}
	base.s.AddLower(base.consts[0], base.vars[0], Annot(mon.Identity()))
	base.s.Solve()
	base.s.Freeze()

	g, _ := mon.SymbolFuncByName("g")
	k, _ := mon.SymbolFuncByName("k")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := base.fork(alg)
			a := Annot(g)
			if w%2 == 1 {
				a = Annot(k)
			}
			// Each fork seeds its own constant with its own annotation.
			f.s.AddLower(f.consts[1+w%3], f.vars[w], a)
			f.s.Solve()
			got := f.s.ConstAnnots(f.consts[1+w%3], f.vars[len(f.vars)-1])
			if len(got) == 0 {
				errs[w] = fmt.Errorf("fork %d: layered constant did not propagate", w)
				return
			}
			for _, x := range got {
				if x != a {
					errs[w] = fmt.Errorf("fork %d: unexpected annotation %v", w, x)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// Explicit, Fresh-prefixed and Anon variable names round-trip and stay
// unique while cycle elimination collapses the variables themselves.
func TestFreshNamesSurviveCollapse(t *testing.T) {
	s := NewSystem(TrivialAlgebra{}, terms.NewSignature(), Options{})
	named := []VarID{s.Var("a"), s.Var("b"), s.Var("c")}
	fresh := []VarID{s.Fresh("t"), s.Fresh("t"), s.Fresh("u")}
	anon := s.Anon()
	all := append(append(append([]VarID(nil), named...), fresh...), anon)

	wantNames := make(map[VarID]string, len(all))
	for _, v := range all {
		wantNames[v] = s.VarName(v)
	}
	uniq := map[string]bool{}
	for _, n := range wantNames {
		if uniq[n] {
			t.Fatalf("duplicate variable name %q before collapse", n)
		}
		uniq[n] = true
	}
	if got := s.VarName(fresh[0]); got != "t#"+fmt.Sprint(int(fresh[0])) {
		t.Errorf("fresh name = %q, want prefix#id", got)
	}

	// Collapse everything into one ε-cycle.
	for i := range all {
		s.AddVarE(all[i], all[(i+1)%len(all)])
	}
	s.Solve()
	if s.Stats().Collapsed == 0 {
		t.Fatal("cycle did not collapse")
	}
	rep := s.Rep(all[0])
	for _, v := range all {
		if s.Rep(v) != rep {
			t.Fatalf("var %d not merged", v)
		}
		if got := s.VarName(v); got != wantNames[v] {
			t.Errorf("VarName(%d) changed across collapse: %q -> %q", v, wantNames[v], got)
		}
	}
	if s.Var("a") != named[0] || s.Var("b") != named[1] {
		t.Error("explicit names no longer intern to their original variables")
	}
	// New variables after the collapse still get unique ids and names.
	nf := s.Fresh("t")
	if nf == fresh[0] || nf == fresh[1] {
		t.Error("Fresh reused an id after collapse")
	}
	if n := s.VarName(nf); uniq[n] {
		t.Errorf("Fresh name %q collides after collapse", n)
	}
}

// Freeze's documented contract: idempotent, and write-free once the
// union-find is normalized, so a second Freeze (or a Freeze racing
// concurrent Forks) never perturbs a frozen base.
func TestFreezeIdempotent(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	r := rand.New(rand.NewSource(11))
	ident := func() Annot { return Annot(mon.Identity()) }
	e := newSysEnv(alg, Options{}, 10, 3)
	e.apply(randomOps(r, 50, 10, 3, ident)) // identity ops drive cycle collapsing
	e.s.Solve()
	e.s.Freeze()

	if e.s.Stats().Collapsed == 0 {
		t.Fatal("test premise: expected some collapsed variables")
	}
	first := make([]VarID, len(e.s.vars))
	for v := range e.s.vars {
		if p := e.s.vars[v].uf; e.s.vars[p].uf != p {
			t.Fatalf("after Freeze, parent of v%d is not a root", v)
		}
		first[v] = e.s.vars[v].uf
	}
	e.s.Freeze()
	for v := range e.s.vars {
		if e.s.vars[v].uf != first[v] {
			t.Fatalf("second Freeze moved v%d: %d -> %d", v, first[v], e.s.vars[v].uf)
		}
		e.s.Rep(VarID(v)) // find on a normalized path must not write either
	}
	for v := range e.s.vars {
		if e.s.vars[v].uf != first[v] {
			t.Fatalf("Rep after Freeze moved v%d", v)
		}
	}
}

// Forking after one Freeze and after a redundant second Freeze yields
// equivalent layers: same stats and same query answers for the same
// layered constraints.
func TestForkAfterDoubleFreeze(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	r := rand.New(rand.NewSource(12))
	ident := func() Annot { return Annot(mon.Identity()) }
	anyAnnot := func() Annot { return Annot(r.Intn(mon.Size())) }
	baseOps := randomOps(r, 30, 8, 3, ident)
	layerOps := randomOps(r, 12, 8, 3, anyAnnot)

	e := newSysEnv(alg, Options{}, 8, 3)
	e.apply(baseOps)
	e.s.Solve()
	e.s.Freeze()
	once := e.fork(alg)
	once.apply(layerOps)
	once.s.Solve()

	e.s.Freeze()
	twice := e.fork(alg)
	twice.apply(layerOps)
	twice.s.Solve()

	if once.s.Stats() != twice.s.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", once.s.Stats(), twice.s.Stats())
	}
	for ci := range e.consts {
		for vi := range e.vars {
			if !annotsEqual(
				once.s.ConstAnnots(once.consts[ci], once.vars[vi]),
				twice.s.ConstAnnots(twice.consts[ci], twice.vars[vi])) {
				t.Fatalf("ConstAnnots diverge at const %d var %d", ci, vi)
			}
		}
	}
}
