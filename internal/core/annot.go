// Package core implements the paper's primary contribution: a resolution
// engine for regularly annotated set constraints (§3). Constraints
// se1 ⊆^a se2 carry annotations drawn from a finite annotation algebra —
// the transition monoid F_M^≡ of the property automaton, or substitution
// environments over it for parametric properties (§6.4). The solver
// applies the resolution rules
//
//	c^α(X1,…,Xn) ⊆^f c^β(Y1,…,Yn)  ⇒  ∧i Xi ⊆^f Yi   (structural)
//	c^α(…) ⊆^f d^β(…)              ⇒  no solution     (clash)
//	c^α(…,Xi,…) ⊆^f Y ∧ c^-i(Y) ⊆^g Z ⇒ Xi ⊆^{f·g} Z  (projection)
//	se1 ⊆^f X ∧ X ⊆^g se2          ⇒  se1 ⊆^{f·g} se2 (transitive)
//
// to a fixed point. Like the BANSHEE implementation described in §8, the
// solver does not materialize representative-function variables on
// constructor expressions; the function constraints needed by a query are
// reconstructed from the composed path annotations at query time, which
// enables aggressive hash-consing of constructor expressions.
//
// Three solving strategies are provided (§5): the bidirectional online
// solver (Solve), which supports separate and incremental analysis and
// tracks full representative functions; and the unidirectional forward
// (SolveForward) and backward (SolveBackward) solvers, which quotient
// derived annotations by the right (left) congruence and track only DFA
// states (accepting state-sets), trading separate analysis for the
// asymptotically smaller annotation domain.
package core

import (
	"rasc/internal/monoid"
	"rasc/internal/subst"
)

// Annot is an interned annotation: a representative function (FuncID) or a
// substitution environment (subst.ID), depending on the system's Algebra.
type Annot int32

// Algebra abstracts the annotation domain: a finite monoid with a
// distinguished set of "accepting" elements (the F_accept of §3.2,
// functions representing full words of L(M)).
type Algebra interface {
	// Identity is the annotation of ε (unannotated constraints).
	Identity() Annot
	// Then composes annotations in word order: word(a) followed by word(b).
	Then(a, b Annot) Annot
	// Accepting reports whether a represents full words of L(M) — for the
	// monoid algebra, a(s0) ∈ S_accept; for substitution environments,
	// whether any instantiation is accepting.
	Accepting(a Annot) bool
	// Dead reports whether a's words can never extend to a word of
	// L(M) on either side — such annotations lie outside the substring
	// domain T^{M^sub} and may be pruned (§3.1). Dead annotations are
	// absorbing under Then.
	Dead(a Annot) bool
	// String renders a for diagnostics.
	String(a Annot) string
}

// FuncAlgebra is the Algebra of representative functions of a transition
// monoid.
type FuncAlgebra struct {
	Mon *monoid.Monoid
}

// Identity implements Algebra.
func (f FuncAlgebra) Identity() Annot { return Annot(f.Mon.Identity()) }

// Then implements Algebra.
func (f FuncAlgebra) Then(a, b Annot) Annot {
	return Annot(f.Mon.Then(monoid.FuncID(a), monoid.FuncID(b)))
}

// Accepting implements Algebra.
func (f FuncAlgebra) Accepting(a Annot) bool { return f.Mon.Accepting(monoid.FuncID(a)) }

// Dead implements Algebra.
func (f FuncAlgebra) Dead(a Annot) bool { return f.Mon.Dead(monoid.FuncID(a)) }

// String implements Algebra.
func (f FuncAlgebra) String(a Annot) string { return f.Mon.String(monoid.FuncID(a)) }

// EnvAlgebra is the Algebra of substitution environments (§6.4), for
// properties with parametric annotations.
type EnvAlgebra struct {
	Tab *subst.Table
}

// Identity implements Algebra.
func (e EnvAlgebra) Identity() Annot { return Annot(e.Tab.Identity()) }

// Then implements Algebra.
func (e EnvAlgebra) Then(a, b Annot) Annot {
	return Annot(e.Tab.Then(subst.ID(a), subst.ID(b)))
}

// Accepting implements Algebra.
func (e EnvAlgebra) Accepting(a Annot) bool { return e.Tab.Accepting(subst.ID(a)) }

// Dead implements Algebra.
func (e EnvAlgebra) Dead(a Annot) bool {
	env := e.Tab.Env(subst.ID(a))
	if !e.Tab.Mon.Dead(env.Residual) {
		return false
	}
	for _, en := range env.Entries {
		if !e.Tab.Mon.Dead(en.F) {
			return false
		}
	}
	return true
}

// String implements Algebra. The table form annotates each entry with the
// state it has reached, so provenance through counter-expanded machines
// shows the counter valuation.
func (e EnvAlgebra) String(a Annot) string { return e.Tab.String(subst.ID(a)) }

// TrivialAlgebra is the one-element algebra; with it the solver degrades
// to plain (unannotated) set constraints, whose accepting query is always
// true. Useful as a baseline and for classic cubic set-constraint
// problems.
type TrivialAlgebra struct{}

// Identity implements Algebra.
func (TrivialAlgebra) Identity() Annot { return 0 }

// Then implements Algebra.
func (TrivialAlgebra) Then(a, b Annot) Annot { return 0 }

// Accepting implements Algebra.
func (TrivialAlgebra) Accepting(a Annot) bool { return true }

// Dead implements Algebra.
func (TrivialAlgebra) Dead(a Annot) bool { return false }

// String implements Algebra.
func (TrivialAlgebra) String(a Annot) string { return "ε" }
