package core

import (
	"fmt"
	"math"
	"unsafe"

	"rasc/internal/snapshot"
	"rasc/internal/terms"
)

// Snapshot section ids of the core layer. Higher layers (pdm) add their
// own sections to the same container starting at id 100; ids here must
// stay stable within a snapshot.FormatVersion.
const (
	secMeta        = 1  // numVars, numCons, nEdges, nReach, nCollapsed, optFlags, cycleBudget
	secStrBlob     = 2  // string table blob
	secStrOffs     = 3  // string table offsets
	secUF          = 4  // union-find parent per var (normalized: parents are roots)
	secVarNames    = 5  // sparse (var, strRef) pairs
	secVarPrefixes = 6  // sparse (var, 1-based prefix index) pairs
	secPrefixes    = 7  // strRef per freshPrefixes entry, in order
	secEdgeOffs    = 8  // per-var out-edge offsets (numVars+1)
	secEdges       = 9  // flat (to, a) pairs
	secSinkOffs    = 10 // per-var sink offsets
	secSinks       = 11 // flat (cn, a) pairs
	secProjOffs    = 12 // per-var projection offsets
	secProjs       = 13 // flat (cons, idx, to, a) quads
	secArgOffs     = 14 // per-var argOf offsets
	secArgOf       = 15 // flat (cn, idx) pairs
	secReachOffs   = 16 // per-var reach-fact offsets
	secReach       = 17 // flat (cn, a, fromVar, parAnnot, step) quints
	secConsHeads   = 18 // constructor id per cons node
	secConsArgOffs = 19 // per-cons argument offsets
	secConsArgs    = 20 // flat argument VarIDs
	secOccurOffs   = 21 // per-cons occurrence offsets
	secOccur       = 22 // flat (v, a) pairs
	secRaw         = 23 // flat (kind, x, y, cn, cons, idx, a) septets
	secClashes     = 24 // flat (src, dst, a) triples
	secProjMerge   = 25 // flat (var, cons, idx, w) quads, sorted
	secSigCons     = 26 // (nameRef, arity) per signature constructor
	secSigVariance = 27 // one byte per constructor argument, in order
)

// optFlags packs the boolean Options into a bitmask for the meta section.
func optFlags(o Options) uint32 {
	var f uint32
	if o.NoCycleElim {
		f |= 1
	}
	if o.NoProjMerge {
		f |= 2
	}
	if o.NoHashCons {
		f |= 4
	}
	if o.NoWitness {
		f |= 8
	}
	if o.PruneDead {
		f |= 16
	}
	return f
}

// EncodeSnapshot serializes the receiver — which must be solved — into
// w's sections. The encoder normalizes the union-find first (Freeze is
// idempotent, so calling it on an already-frozen System performs no
// writes), then emits every per-variable and per-cons-node array as
// offset-indexed flat uint32 sections in deterministic order, so equal
// Systems encode to equal bytes.
//
// The dedup/seen tables, the reach hash indexes and the intern maps are
// not serialized: DecodeSystem reconstructs them from the arrays, which
// is both smaller on disk and provably equivalent for every operation a
// fork of the frozen base can perform.
func (s *System) EncodeSnapshot(w *snapshot.Writer) {
	if len(s.work) > 0 {
		panic("core: EncodeSnapshot of an unsolved System (call Solve first)")
	}
	s.Freeze()
	sb := snapshot.NewStringBuilder()
	numVars, numCons := len(s.vars), len(s.cons)

	w.Uint32s(secMeta, []uint32{
		uint32(numVars), uint32(numCons),
		uint32(s.nEdges), uint32(s.nReach), uint32(s.nCollapsed),
		optFlags(s.opts), uint32(s.opts.CycleBudget),
	})

	uf := make([]uint32, numVars)
	var names, prefixPairs []uint32
	for v := range s.vars {
		uf[v] = uint32(s.vars[v].uf)
		if s.vars[v].name != "" {
			names = append(names, uint32(v), sb.Ref(s.vars[v].name))
		}
		if s.vars[v].prefix != 0 {
			prefixPairs = append(prefixPairs, uint32(v), uint32(s.vars[v].prefix))
		}
	}
	w.Uint32s(secUF, uf)
	w.Uint32s(secVarNames, names)
	w.Uint32s(secVarPrefixes, prefixPairs)
	prefixes := make([]uint32, len(s.freshPrefixes))
	for i, p := range s.freshPrefixes {
		prefixes[i] = sb.Ref(p)
	}
	w.Uint32s(secPrefixes, prefixes)

	// Per-var arrays: one offsets section plus one flat section each.
	eoffs := make([]uint32, 0, numVars+1)
	var eflat []uint32
	soffs := make([]uint32, 0, numVars+1)
	var sflat []uint32
	poffs := make([]uint32, 0, numVars+1)
	var pflat []uint32
	aoffs := make([]uint32, 0, numVars+1)
	var aflat []uint32
	roffs := make([]uint32, 0, numVars+1)
	var rflat []uint32
	eoffs, soffs, poffs, aoffs, roffs = append(eoffs, 0), append(soffs, 0), append(poffs, 0), append(aoffs, 0), append(roffs, 0)
	var nEdges, nSinks, nProjs, nArgs, nFacts uint32
	for v := range s.vars {
		vd := &s.vars[v]
		for _, e := range vd.out {
			eflat = append(eflat, uint32(e.to), uint32(e.a))
		}
		nEdges += uint32(len(vd.out))
		eoffs = append(eoffs, nEdges)
		for _, sk := range vd.sinks {
			sflat = append(sflat, uint32(sk.cn), uint32(sk.a))
		}
		nSinks += uint32(len(vd.sinks))
		soffs = append(soffs, nSinks)
		for _, pr := range vd.projs {
			pflat = append(pflat, uint32(pr.cons), uint32(pr.idx), uint32(pr.to), uint32(pr.a))
		}
		nProjs += uint32(len(vd.projs))
		poffs = append(poffs, nProjs)
		for _, au := range vd.argOf {
			aflat = append(aflat, uint32(au.cn), uint32(au.idx))
		}
		nArgs += uint32(len(vd.argOf))
		aoffs = append(aoffs, nArgs)
		for i := range vd.reach.facts {
			f := &vd.reach.facts[i]
			rflat = append(rflat, uint32(f.cn), uint32(f.a),
				uint32(int32(f.par.fromVar)), uint32(f.par.annot), uint32(f.par.step))
		}
		nFacts += uint32(len(vd.reach.facts))
		roffs = append(roffs, nFacts)
	}
	w.Uint32s(secEdgeOffs, eoffs)
	w.Uint32s(secEdges, eflat)
	w.Uint32s(secSinkOffs, soffs)
	w.Uint32s(secSinks, sflat)
	w.Uint32s(secProjOffs, poffs)
	w.Uint32s(secProjs, pflat)
	w.Uint32s(secArgOffs, aoffs)
	w.Uint32s(secArgOf, aflat)
	w.Uint32s(secReachOffs, roffs)
	w.Uint32s(secReach, rflat)

	heads := make([]uint32, numCons)
	caoffs := make([]uint32, 0, numCons+1)
	caoffs = append(caoffs, 0)
	var caflat []uint32
	ooffs := make([]uint32, 0, numCons+1)
	ooffs = append(ooffs, 0)
	var oflat []uint32
	var nCArgs, nOccur uint32
	for cn := range s.cons {
		cd := &s.cons[cn]
		heads[cn] = uint32(cd.cons)
		for _, a := range cd.args {
			caflat = append(caflat, uint32(a))
		}
		nCArgs += uint32(len(cd.args))
		caoffs = append(caoffs, nCArgs)
		for _, oc := range cd.occur {
			oflat = append(oflat, uint32(oc.v), uint32(oc.a))
		}
		nOccur += uint32(len(cd.occur))
		ooffs = append(ooffs, nOccur)
	}
	w.Uint32s(secConsHeads, heads)
	w.Uint32s(secConsArgOffs, caoffs)
	w.Uint32s(secConsArgs, caflat)
	w.Uint32s(secOccurOffs, ooffs)
	w.Uint32s(secOccur, oflat)

	rawFlat := make([]uint32, 0, 7*len(s.raw))
	for _, rc := range s.raw {
		rawFlat = append(rawFlat, uint32(rc.kind), uint32(rc.x), uint32(rc.y),
			uint32(rc.cn), uint32(rc.cons), uint32(rc.idx), uint32(rc.a))
	}
	w.Uint32s(secRaw, rawFlat)

	clashFlat := make([]uint32, 0, 3*len(s.clashes))
	for _, c := range s.clashes {
		clashFlat = append(clashFlat, uint32(c.Src), uint32(c.Dst), uint32(c.Annot))
	}
	w.Uint32s(secClashes, clashFlat)

	// projMerge maps are unordered; emit entries sorted by (var, cons,
	// idx) so encoding is deterministic.
	var pm []uint32
	for v := range s.vars {
		m := s.vars[v].projMerge
		if len(m) == 0 {
			continue
		}
		keys := make([]projMergeKey, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && (keys[j].cons < keys[j-1].cons ||
				(keys[j].cons == keys[j-1].cons && keys[j].idx < keys[j-1].idx)); j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			pm = append(pm, uint32(v), uint32(k.cons), uint32(k.idx), uint32(m[k]))
		}
	}
	w.Uint32s(secProjMerge, pm)

	sigCons := make([]uint32, 0, 2*s.Sig.Size())
	var variance []byte
	for i := 0; i < s.Sig.Size(); i++ {
		id := terms.ConsID(i)
		sigCons = append(sigCons, sb.Ref(s.Sig.Name(id)), uint32(s.Sig.Arity(id)))
		for j := 0; j < s.Sig.Arity(id); j++ {
			variance = append(variance, byte(s.Sig.VarianceOf(id, j)))
		}
	}
	w.Uint32s(secSigCons, sigCons)
	w.Bytes(secSigVariance, variance)
	sb.Flush(w, secStrBlob, secStrOffs)
}

// Layout guards for the bulk-aliasing fast path below: a decoded flat
// uint32 section may be reinterpreted as a []edge (etc.) only when the
// struct is two naturally-aligned 32-bit fields with no padding.
var (
	canAliasEdge  = unsafe.Sizeof(edge{}) == 8 && unsafe.Alignof(edge{}) <= 4
	canAliasSink  = unsafe.Sizeof(sinkRef{}) == 8 && unsafe.Alignof(sinkRef{}) <= 4
	canAliasOccur = unsafe.Sizeof(varAnnot{}) == 8 && unsafe.Alignof(varAnnot{}) <= 4
)

// DecodeSystem reconstructs a frozen System from r's core sections,
// without re-solving: the edge lists, reach facts and raw constraints
// are loaded in their serialized order (so queries, witnesses and fact
// discovery order are byte-identical to the live build), the reach hash
// indexes are rebuilt by replaying insertions into their final-size
// tables (which reproduces the live probe layout exactly), and the dedup
// tables are rebuilt as frozen base layers from the surviving lists —
// the keys the live tables additionally held for collapsed variables are
// unreachable after Freeze, so forks cannot distinguish the two.
//
// Pair-shaped arrays (edges, sinks, occurrences) are reinterpreted
// in-place over the section buffer where the host layout allows, and
// every other kind is materialized with one bulk allocation, so decoding
// performs no per-edge work beyond validation.
//
// alg must agree with the encoding System's algebra on every annotation
// in the snapshot; with identityOnly set, decoding fails unless every
// annotation is the identity (0) — the skeleton contract that makes the
// base valid under any per-property algebra. opts must equal the options
// the snapshot was solved under.
//
// Validation is exhaustive: every index is range-checked against the
// tables it refers into, so a corrupt-but-checksummed snapshot (or a
// hostile file) yields an error, never a panic or an out-of-bounds
// System. All structural errors wrap snapshot.ErrCorrupt.
func DecodeSystem(r *snapshot.Reader, alg Algebra, opts Options, identityOnly bool) (*System, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: core: "+format, append([]any{snapshot.ErrCorrupt}, args...)...)
	}
	meta, err := r.Uint32s(secMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 7 {
		return nil, bad("meta section has %d words, want 7", len(meta))
	}
	numVars, numCons := int(meta[0]), int(meta[1])
	if opts.CycleBudget == 0 {
		opts.CycleBudget = 64
	}
	if meta[5] != optFlags(opts) || meta[6] != uint32(opts.CycleBudget) {
		return nil, fmt.Errorf("core: snapshot was solved under different Options (flags %d budget %d, want %d %d)",
			meta[5], meta[6], optFlags(opts), opts.CycleBudget)
	}

	strs, err := snapshot.ReadStrings(r, secStrBlob, secStrOffs)
	if err != nil {
		return nil, err
	}

	checkAnnot := func(a uint32) error {
		if identityOnly && a != 0 {
			return bad("non-identity annotation %d in an identity-only snapshot", a)
		}
		if a > math.MaxInt32 {
			return bad("annotation %d overflows int32", a)
		}
		return nil
	}
	checkVar := func(v uint32) error {
		if int(v) >= numVars {
			return bad("variable %d out of range (%d vars)", v, numVars)
		}
		return nil
	}
	checkCons := func(cn uint32) error {
		if int(cn) >= numCons {
			return bad("cons node %d out of range (%d nodes)", cn, numCons)
		}
		return nil
	}

	// Signature.
	sigCons, err := r.Uint32s(secSigCons)
	if err != nil {
		return nil, err
	}
	variance, err := r.Bytes(secSigVariance)
	if err != nil {
		return nil, err
	}
	if len(sigCons)%2 != 0 {
		return nil, bad("signature section has odd length %d", len(sigCons))
	}
	sig := terms.NewSignature()
	vi := 0
	for i := 0; i < len(sigCons)/2; i++ {
		name, err := strs.At(sigCons[2*i])
		if err != nil {
			return nil, err
		}
		arity := int(sigCons[2*i+1])
		if arity < 0 || vi+arity > len(variance) {
			return nil, bad("constructor %q arity %d overruns variance section", name, arity)
		}
		var vars []terms.Variance
		for j := 0; j < arity; j++ {
			switch variance[vi+j] {
			case byte(terms.Covariant):
			case byte(terms.Contravariant):
				if vars == nil {
					vars = make([]terms.Variance, arity)
				}
			default:
				return nil, bad("constructor %q has invalid variance byte %d", name, variance[vi+j])
			}
			if vars != nil {
				vars[j] = terms.Variance(variance[vi+j])
			}
		}
		id, derr := sig.DeclareVariance(name, arity, vars)
		if derr != nil || int(id) != i {
			return nil, bad("constructor %q is not freshly declarable at slot %d", name, i)
		}
		vi += arity
	}
	if vi != len(variance) {
		return nil, bad("variance section has %d trailing bytes", len(variance)-vi)
	}
	checkSigCons := func(c, idx uint32) error {
		if int(c) >= sig.Size() {
			return bad("constructor id %d out of range (%d declared)", c, sig.Size())
		}
		if int(idx) >= sig.Arity(terms.ConsID(c)) {
			return bad("projection index %d out of range for %s/%d", idx, sig.Name(terms.ConsID(c)), sig.Arity(terms.ConsID(c)))
		}
		return nil
	}

	// Variable headers.
	uf, err := r.Uint32s(secUF)
	if err != nil {
		return nil, err
	}
	if len(uf) != numVars {
		return nil, bad("union-find section has %d entries, want %d", len(uf), numVars)
	}
	vars := make([]varData, numVars)
	for v, u := range uf {
		if err := checkVar(u); err != nil {
			return nil, err
		}
		vars[v].uf = VarID(u)
	}
	for v := range vars {
		if vars[vars[v].uf].uf != vars[v].uf {
			return nil, bad("union-find parent of v%d is not a root", v)
		}
	}

	names, err := r.Uint32s(secVarNames)
	if err != nil {
		return nil, err
	}
	if len(names)%2 != 0 {
		return nil, bad("var-name section has odd length")
	}
	varIndexBase := make(map[string]VarID, len(names)/2)
	for i := 0; i < len(names); i += 2 {
		if err := checkVar(names[i]); err != nil {
			return nil, err
		}
		name, err := strs.At(names[i+1])
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, bad("v%d has an empty interned name", names[i])
		}
		if _, dup := varIndexBase[name]; dup {
			return nil, bad("variable name %q interned twice", name)
		}
		vars[names[i]].name = name
		varIndexBase[name] = VarID(names[i])
	}

	prefixRefs, err := r.Uint32s(secPrefixes)
	if err != nil {
		return nil, err
	}
	freshPrefixes := make([]string, len(prefixRefs))
	prefixIndex := make(map[string]int32, len(prefixRefs))
	for i, ref := range prefixRefs {
		p, err := strs.At(ref)
		if err != nil {
			return nil, err
		}
		if _, dup := prefixIndex[p]; dup {
			return nil, bad("fresh prefix %q interned twice", p)
		}
		freshPrefixes[i] = p
		prefixIndex[p] = int32(i + 1)
	}
	prefixPairs, err := r.Uint32s(secVarPrefixes)
	if err != nil {
		return nil, err
	}
	if len(prefixPairs)%2 != 0 {
		return nil, bad("var-prefix section has odd length")
	}
	for i := 0; i < len(prefixPairs); i += 2 {
		if err := checkVar(prefixPairs[i]); err != nil {
			return nil, err
		}
		idx := prefixPairs[i+1]
		if idx == 0 || int(idx) > len(freshPrefixes) {
			return nil, bad("v%d has prefix index %d out of range (%d prefixes)", prefixPairs[i], idx, len(freshPrefixes))
		}
		vars[prefixPairs[i]].prefix = int32(idx)
	}

	readOffsets := func(id uint32, n int) ([]uint32, error) {
		offs, err := r.Uint32s(id)
		if err != nil {
			return nil, err
		}
		if len(offs) != n+1 || offs[0] != 0 {
			return nil, bad("offsets section %d has %d entries, want %d", id, len(offs), n+1)
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				return nil, bad("offsets section %d is not monotone", id)
			}
		}
		return offs, nil
	}
	readFlat := func(id uint32, total uint32, width int) ([]uint32, error) {
		flat, err := r.Uint32s(id)
		if err != nil {
			return nil, err
		}
		if uint64(len(flat)) != uint64(total)*uint64(width) {
			return nil, bad("flat section %d has %d words, want %d×%d", id, len(flat), total, width)
		}
		return flat, nil
	}

	// Out edges: validate, then view the flat pairs in place (or copy
	// them in one allocation) and hand each variable its clip-capped
	// subslice.
	eoffs, err := readOffsets(secEdgeOffs, numVars)
	if err != nil {
		return nil, err
	}
	eflat, err := readFlat(secEdges, eoffs[numVars], 2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(eflat); i += 2 {
		if err := checkVar(eflat[i]); err != nil {
			return nil, err
		}
		if err := checkAnnot(eflat[i+1]); err != nil {
			return nil, err
		}
	}
	edgesAll := aliasPairs[edge](eflat, canAliasEdge, func(to, a uint32) edge {
		return edge{VarID(to), Annot(a)}
	})
	edgeSeenBase := make(map[edgeKey]struct{}, len(edgesAll))
	for v := range vars {
		vars[v].out = clip(edgesAll[eoffs[v]:eoffs[v+1]])
		for _, e := range vars[v].out {
			k := edgeKey{int32(v), int32(e.to), e.a}
			if _, dup := edgeSeenBase[k]; dup {
				return nil, bad("duplicate edge v%d -> v%d", v, e.to)
			}
			edgeSeenBase[k] = struct{}{}
		}
	}

	soffs, err := readOffsets(secSinkOffs, numVars)
	if err != nil {
		return nil, err
	}
	sflat, err := readFlat(secSinks, soffs[numVars], 2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(sflat); i += 2 {
		if err := checkCons(sflat[i]); err != nil {
			return nil, err
		}
		if err := checkAnnot(sflat[i+1]); err != nil {
			return nil, err
		}
	}
	sinksAll := aliasPairs[sinkRef](sflat, canAliasSink, func(cn, a uint32) sinkRef {
		return sinkRef{CNode(cn), Annot(a)}
	})
	sinkSeenBase := make(map[edgeKey]struct{}, len(sinksAll))
	for v := range vars {
		vars[v].sinks = clip(sinksAll[soffs[v]:soffs[v+1]])
		for _, sk := range vars[v].sinks {
			k := edgeKey{int32(v), int32(sk.cn), sk.a}
			if _, dup := sinkSeenBase[k]; dup {
				return nil, bad("duplicate sink at v%d", v)
			}
			sinkSeenBase[k] = struct{}{}
		}
	}

	poffs, err := readOffsets(secProjOffs, numVars)
	if err != nil {
		return nil, err
	}
	pflat, err := readFlat(secProjs, poffs[numVars], 4)
	if err != nil {
		return nil, err
	}
	projsAll := make([]projRef, poffs[numVars])
	for i := range projsAll {
		c, idx, to, a := pflat[4*i], pflat[4*i+1], pflat[4*i+2], pflat[4*i+3]
		if err := checkSigCons(c, idx); err != nil {
			return nil, err
		}
		if err := checkVar(to); err != nil {
			return nil, err
		}
		if err := checkAnnot(a); err != nil {
			return nil, err
		}
		projsAll[i] = projRef{terms.ConsID(c), int(idx), VarID(to), Annot(a)}
	}
	projSeenBase := make(map[projKey]struct{}, len(projsAll))
	for v := range vars {
		vars[v].projs = clip(projsAll[poffs[v]:poffs[v+1]])
		for _, pr := range vars[v].projs {
			k := projKey{VarID(v), pr.cons, pr.idx, pr.to, pr.a}
			if _, dup := projSeenBase[k]; dup {
				return nil, bad("duplicate projection at v%d", v)
			}
			projSeenBase[k] = struct{}{}
		}
	}

	aoffs, err := readOffsets(secArgOffs, numVars)
	if err != nil {
		return nil, err
	}
	aflat, err := readFlat(secArgOf, aoffs[numVars], 2)
	if err != nil {
		return nil, err
	}
	argsAll := make([]argUse, aoffs[numVars])
	for i := range argsAll {
		cn, idx := aflat[2*i], aflat[2*i+1]
		if err := checkCons(cn); err != nil {
			return nil, err
		}
		argsAll[i] = argUse{CNode(cn), int(idx)}
	}
	for v := range vars {
		vars[v].argOf = clip(argsAll[aoffs[v]:aoffs[v+1]])
	}

	// Reach facts, plus a rebuilt hash index per variable: inserting the
	// facts in serialized order into a final-size table reproduces the
	// live probe layout, because the live table's growth path rehashes in
	// fact order too.
	roffs, err := readOffsets(secReachOffs, numVars)
	if err != nil {
		return nil, err
	}
	rflat, err := readFlat(secReach, roffs[numVars], 5)
	if err != nil {
		return nil, err
	}
	factsAll := make([]reachFact, roffs[numVars])
	for i := range factsAll {
		cn, a := rflat[5*i], rflat[5*i+1]
		fromVar := int32(rflat[5*i+2])
		parAnnot, step := rflat[5*i+3], rflat[5*i+4]
		if err := checkCons(cn); err != nil {
			return nil, err
		}
		if err := checkAnnot(a); err != nil {
			return nil, err
		}
		if fromVar != -1 {
			if err := checkVar(uint32(fromVar)); err != nil {
				return nil, err
			}
		}
		if err := checkAnnot(parAnnot); err != nil {
			return nil, err
		}
		if step > uint32(stepMerged) {
			return nil, bad("reach fact has invalid step kind %d", step)
		}
		factsAll[i] = reachFact{CNode(cn), Annot(a),
			parent{VarID(fromVar), Annot(parAnnot), stepKind(step)}}
	}
	var totalSlots int
	for v := range vars {
		totalSlots += reachTableSize(int(roffs[v+1] - roffs[v]))
	}
	slabs := make([]int32, totalSlots)
	slotOff := 0
	for v := range vars {
		facts := clip(factsAll[roffs[v]:roffs[v+1]])
		size := reachTableSize(len(facts))
		table := slabs[slotOff : slotOff+size : slotOff+size]
		slotOff += size
		mask := uint32(size - 1)
		for i := range facts {
			h := reachHash(facts[i].cn, facts[i].a) & mask
			for table[h] != 0 {
				f := &facts[table[h]-1]
				if f.cn == facts[i].cn && f.a == facts[i].a {
					return nil, bad("duplicate reach fact at v%d", v)
				}
				h = (h + 1) & mask
			}
			table[h] = int32(i + 1)
		}
		vars[v].reach = reachSet{facts: facts, table: table}
	}

	// Cons-node table.
	heads, err := r.Uint32s(secConsHeads)
	if err != nil {
		return nil, err
	}
	if len(heads) != numCons {
		return nil, bad("cons-head section has %d entries, want %d", len(heads), numCons)
	}
	caoffs, err := readOffsets(secConsArgOffs, numCons)
	if err != nil {
		return nil, err
	}
	caflat, err := readFlat(secConsArgs, caoffs[numCons], 1)
	if err != nil {
		return nil, err
	}
	cargsAll := make([]VarID, len(caflat))
	for i, a := range caflat {
		if err := checkVar(a); err != nil {
			return nil, err
		}
		cargsAll[i] = VarID(a)
	}
	ooffs, err := readOffsets(secOccurOffs, numCons)
	if err != nil {
		return nil, err
	}
	oflat, err := readFlat(secOccur, ooffs[numCons], 2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(oflat); i += 2 {
		if err := checkVar(oflat[i]); err != nil {
			return nil, err
		}
		if err := checkAnnot(oflat[i+1]); err != nil {
			return nil, err
		}
	}
	occurAll := aliasPairs[varAnnot](oflat, canAliasOccur, func(v, a uint32) varAnnot {
		return varAnnot{VarID(v), Annot(a)}
	})
	cons := make([]consData, numCons)
	consIndexBase := make(map[consKey]CNode)
	if !opts.NoHashCons {
		consIndexBase = make(map[consKey]CNode, numCons)
	}
	for cn := range cons {
		c := heads[cn]
		if int(c) >= sig.Size() {
			return nil, bad("cons node %d has constructor id %d out of range", cn, c)
		}
		args := clip(cargsAll[caoffs[cn]:caoffs[cn+1]])
		if len(args) != sig.Arity(terms.ConsID(c)) {
			return nil, bad("cons node %d has %d args, %s wants %d", cn, len(args), sig.Name(terms.ConsID(c)), sig.Arity(terms.ConsID(c)))
		}
		cons[cn] = consData{
			cons:  terms.ConsID(c),
			args:  args,
			occur: clip(occurAll[ooffs[cn]:ooffs[cn+1]]),
		}
		if !opts.NoHashCons {
			key := makeConsKey(terms.ConsID(c), args)
			if _, dup := consIndexBase[key]; dup {
				return nil, bad("cons node %d duplicates an interned expression", cn)
			}
			consIndexBase[key] = CNode(cn)
		}
	}

	// Raw constraints, in recorded order (PN-reachability and DOT read
	// them directly).
	rawWords, err := r.Uint32s(secRaw)
	if err != nil {
		return nil, err
	}
	if len(rawWords)%7 != 0 {
		return nil, bad("raw section has %d words, not septets", len(rawWords))
	}
	raw := make([]rawConstraint, len(rawWords)/7)
	for i := range raw {
		kind, x, y := rawWords[7*i], rawWords[7*i+1], rawWords[7*i+2]
		cn, c, idx, a := rawWords[7*i+3], rawWords[7*i+4], rawWords[7*i+5], rawWords[7*i+6]
		if err := checkAnnot(a); err != nil {
			return nil, err
		}
		switch rawKind(kind) {
		case rawVarVar:
			if err := checkVar(x); err != nil {
				return nil, err
			}
			if err := checkVar(y); err != nil {
				return nil, err
			}
		case rawLower:
			if err := checkCons(cn); err != nil {
				return nil, err
			}
			if err := checkVar(y); err != nil {
				return nil, err
			}
		case rawUpper:
			if err := checkVar(x); err != nil {
				return nil, err
			}
			if err := checkCons(cn); err != nil {
				return nil, err
			}
		case rawProj:
			if err := checkSigCons(c, idx); err != nil {
				return nil, err
			}
			if err := checkVar(x); err != nil {
				return nil, err
			}
			if err := checkVar(y); err != nil {
				return nil, err
			}
		default:
			return nil, bad("raw constraint %d has invalid kind %d", i, kind)
		}
		raw[i] = rawConstraint{kind: rawKind(kind), x: VarID(x), y: VarID(y),
			cn: CNode(cn), cons: terms.ConsID(c), idx: int(idx), a: Annot(a)}
	}

	clashWords, err := r.Uint32s(secClashes)
	if err != nil {
		return nil, err
	}
	if len(clashWords)%3 != 0 {
		return nil, bad("clash section has %d words, not triples", len(clashWords))
	}
	clashes := make([]Clash, len(clashWords)/3)
	clashSeenBase := make(map[Clash]struct{}, len(clashes))
	for i := range clashes {
		src, dst, a := clashWords[3*i], clashWords[3*i+1], clashWords[3*i+2]
		if err := checkCons(src); err != nil {
			return nil, err
		}
		if err := checkCons(dst); err != nil {
			return nil, err
		}
		if err := checkAnnot(a); err != nil {
			return nil, err
		}
		clashes[i] = Clash{CNode(src), CNode(dst), Annot(a)}
		clashSeenBase[clashes[i]] = struct{}{}
	}

	pm, err := r.Uint32s(secProjMerge)
	if err != nil {
		return nil, err
	}
	if len(pm)%4 != 0 {
		return nil, bad("projMerge section has %d words, not quads", len(pm))
	}
	for i := 0; i < len(pm); i += 4 {
		v, c, idx, w := pm[i], pm[i+1], pm[i+2], pm[i+3]
		if err := checkVar(v); err != nil {
			return nil, err
		}
		if err := checkSigCons(c, idx); err != nil {
			return nil, err
		}
		if err := checkVar(w); err != nil {
			return nil, err
		}
		key := projMergeKey{terms.ConsID(c), int(idx)}
		if vars[v].projMerge == nil {
			vars[v].projMerge = make(map[projMergeKey]VarID)
		}
		if _, dup := vars[v].projMerge[key]; dup {
			return nil, bad("v%d has duplicate projMerge key", v)
		}
		vars[v].projMerge[key] = VarID(w)
	}

	return &System{
		Alg:           alg,
		Sig:           sig,
		opts:          opts,
		vars:          vars,
		varIndex:      internBase(varIndexBase),
		cons:          cons,
		consIndex:     internBase(consIndexBase),
		freshPrefixes: freshPrefixes,
		prefixIndex:   prefixIndex,
		edgeSeen:      seenBase(edgeSeenBase),
		sinkSeen:      seenBase(sinkSeenBase),
		projSeen:      seenBase(projSeenBase),
		clashSeen:     seenBase(clashSeenBase),
		work:          make([]workItem, 0, 64),
		clashes:       clashes,
		raw:           raw,
		nEdges:        int(meta[2]),
		nReach:        int(meta[3]),
		nCollapsed:    int(meta[4]),
	}, nil
}

// reachTableSize returns the open-addressing table size reachSet.insert
// ends at after n insertions: the smallest power of two ≥ 8 keeping the
// load factor at or under 3/4, or 0 for an empty set.
func reachTableSize(n int) int {
	if n == 0 {
		return 0
	}
	size := 8
	for 4*n > 3*size {
		size *= 2
	}
	return size
}

// aliasPairs views a flat (a, b) uint32 array as a []T of two-field
// 32-bit structs. When the host layout matches (checked by the caller
// via the canAlias* guards) the result aliases flat's storage — which on
// little-endian hosts is the snapshot read buffer itself — otherwise
// the pairs are materialized with a single allocation.
func aliasPairs[T any](flat []uint32, canAlias bool, mk func(a, b uint32) T) []T {
	n := len(flat) / 2
	if canAlias && n > 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&flat[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = mk(flat[2*i], flat[2*i+1])
	}
	return out
}
