package core

// Layered dedup/intern tables. A System forked from a solved base must
// see every key the base recorded without copying the base's maps, so
// each table is an optional frozen base layer plus a private overlay.
// Only the overlay is ever written; the base is shared read-only between
// any number of concurrent forks.

// seenSet is a set of comparable keys with an optional frozen base.
type seenSet[K comparable] struct {
	base map[K]struct{}
	own  map[K]struct{}
}

func newSeenSet[K comparable]() seenSet[K] {
	return seenSet[K]{own: make(map[K]struct{})}
}

// seenBase returns a set over a prebuilt frozen base layer. The snapshot
// decoder reconstructs dedup state this way: the rebuilt map becomes the
// base a decoded System's forks share, exactly as if it had been forked
// from the live build.
func seenBase[K comparable](base map[K]struct{}) seenSet[K] {
	return seenSet[K]{base: base, own: make(map[K]struct{})}
}

func (s *seenSet[K]) has(k K) bool {
	if _, ok := s.own[k]; ok {
		return true
	}
	_, ok := s.base[k]
	return ok
}

// add inserts k, reporting whether it was absent.
func (s *seenSet[K]) add(k K) bool {
	if s.has(k) {
		return false
	}
	s.own[k] = struct{}{}
	return true
}

// fork returns a set that sees every current element through a shared
// frozen base and writes only to a fresh overlay. The receiver must not
// be written afterwards (Fork's quiescence contract).
func (s *seenSet[K]) fork() seenSet[K] {
	base := s.base
	if len(s.own) > 0 {
		if base == nil {
			base = s.own
		} else {
			merged := make(map[K]struct{}, len(base)+len(s.own))
			for k := range base {
				merged[k] = struct{}{}
			}
			for k := range s.own {
				merged[k] = struct{}{}
			}
			base = merged
		}
	}
	return seenSet[K]{base: base, own: make(map[K]struct{})}
}

// internMap is a key-to-value intern table with an optional frozen base.
type internMap[K comparable, V any] struct {
	base map[K]V
	own  map[K]V
}

func newInternMap[K comparable, V any]() internMap[K, V] {
	return internMap[K, V]{own: make(map[K]V)}
}

// internBase mirrors seenBase for intern tables.
func internBase[K comparable, V any](base map[K]V) internMap[K, V] {
	return internMap[K, V]{base: base, own: make(map[K]V)}
}

func (m *internMap[K, V]) get(k K) (V, bool) {
	if v, ok := m.own[k]; ok {
		return v, true
	}
	v, ok := m.base[k]
	return v, ok
}

func (m *internMap[K, V]) put(k K, v V) { m.own[k] = v }

// fork mirrors seenSet.fork.
func (m *internMap[K, V]) fork() internMap[K, V] {
	base := m.base
	if len(m.own) > 0 {
		if base == nil {
			base = m.own
		} else {
			merged := make(map[K]V, len(base)+len(m.own))
			for k, v := range base {
				merged[k] = v
			}
			for k, v := range m.own {
				merged[k] = v
			}
			base = merged
		}
	}
	return internMap[K, V]{base: base, own: make(map[K]V)}
}
