package core

import (
	"strings"
	"testing"

	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// RootAnnots reconstructs the function constraints f∘α ⊆ β of the
// structural rule at query time.
func TestRootAnnots(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)

	s := NewSystem(alg, sig, Options{})
	W, X, Y := s.Var("W"), s.Var("X"), s.Var("Y")
	fg := annotOf(mon, "g")
	cNode := s.Constant(cCons)
	oW := s.Cons(oCons, W)
	oY := s.Cons(oCons, Y)
	s.AddLower(cNode, W, fg)
	s.AddLower(oW, X, fg) // o^β(W) ⊆^g X
	s.AddUpperE(X, oY)    // X ⊆ o^γ(Y): meet gives f_g∘β ⊆ γ
	s.Solve()

	roots := s.RootAnnots([]CNode{cNode, oW})
	// β ⊇ {f_ε} (seeded); γ ⊇ {f_g∘f_ε·fg} = {f_g}.
	if !roots[oW][Annot(mon.Identity())] {
		t.Error("β should contain f_ε (seeded)")
	}
	if !roots[oY][fg] {
		t.Errorf("γ = %v, want f_g", roots[oY])
	}
	if roots[oY][Annot(mon.Identity())] {
		t.Error("γ must not contain f_ε (not seeded, not forced)")
	}

	// Without seeds, nothing flows into γ (no source class for β).
	empty := s.RootAnnots(nil)
	if len(empty[oY]) != 0 {
		t.Errorf("unseeded γ = %v, want empty", empty[oY])
	}
}

func TestLowerNodes(t *testing.T) {
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	b := sig.MustDeclare("b", 0)
	s := NewSystem(TrivialAlgebra{}, sig, Options{})
	x := s.Var("x")
	ca := s.Constant(a)
	cb := s.Constant(b)
	s.AddLowerE(ca, x)
	s.AddLowerE(ca, x) // duplicate
	s.AddUpperE(x, cb) // upper only: not a lower node
	got := s.LowerNodes()
	if len(got) != 1 || got[0] != ca {
		t.Errorf("LowerNodes = %v, want [a]", got)
	}
}

func TestTermsInDepthAndLimit(t *testing.T) {
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	o := sig.MustDeclare("o", 1)
	s := NewSystem(TrivialAlgebra{}, sig, Options{})
	x, y, z := s.Var("x"), s.Var("y"), s.Var("z")
	s.AddLowerE(s.Constant(a), x)
	s.AddLowerE(s.Cons(o, x), y)
	s.AddLowerE(s.Cons(o, y), z)
	s.Solve()

	bank := terms.NewBank(sig)
	// Depth 1 at z: the o(o(a)) term needs depth 3.
	if got := s.TermsIn(z, bank, 1, 0); len(got) != 0 {
		t.Errorf("depth-1 terms at z = %d, want 0", len(got))
	}
	if got := s.TermsIn(z, bank, 3, 0); len(got) != 1 {
		t.Errorf("depth-3 terms at z = %d, want 1", len(got))
	}
	// A self-loop through o would be infinite; depth bounds it.
	s.AddLowerE(s.Cons(o, z), z)
	s.Solve()
	got := s.TermsIn(z, bank, 4, 0)
	if len(got) == 0 {
		t.Error("recursive terms should enumerate up to the depth bound")
	}
	// Limit caps the enumeration.
	if got := s.TermsIn(z, bank, 6, 2); len(got) > 2 {
		t.Errorf("limit ignored: %d terms", len(got))
	}
}

func TestEntailedTermInNegative(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	x := s.Var("x")
	cNode := s.Constant(cCons)
	fg := annotOf(mon, "g")
	s.AddLower(cNode, x, fg)
	s.Solve()

	bank := terms.NewBank(sig)
	cfg := bank.MustMk(cCons, monoid.FuncID(fg))
	cfk := bank.MustMk(cCons, monoid.FuncID(annotOf(mon, "k")))
	if !s.EntailedTermIn(cfg, x, bank, []CNode{cNode}) {
		t.Error("c^g should be entailed in x")
	}
	if s.EntailedTermIn(cfk, x, bank, []CNode{cNode}) {
		t.Error("c^k must not be entailed in x")
	}
}

func TestSourcesAtDeterministic(t *testing.T) {
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	b := sig.MustDeclare("b", 0)
	s := NewSystem(TrivialAlgebra{}, sig, Options{})
	x := s.Var("x")
	s.AddLowerE(s.Constant(b), x)
	s.AddLowerE(s.Constant(a), x)
	s.Solve()
	got1 := s.SourcesAt(x)
	got2 := s.SourcesAt(x)
	if len(got1) != 2 || len(got2) != 2 {
		t.Fatalf("SourcesAt = %v", got1)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Error("SourcesAt should be deterministic")
		}
	}
}

// The cycle budget bounds detection: a long ε-ring is not collapsed with
// a small budget but is with a large one.
func TestCycleBudget(t *testing.T) {
	build := func(budget int) *System {
		sig := terms.NewSignature()
		s := NewSystem(TrivialAlgebra{}, sig, Options{CycleBudget: budget})
		const n = 200
		vars := make([]VarID, n)
		for i := range vars {
			vars[i] = s.Fresh("v")
		}
		for i := range vars {
			s.AddVarE(vars[i], vars[(i+1)%n])
		}
		s.Solve()
		return s
	}
	small := build(8)
	if small.Stats().Collapsed != 0 {
		t.Error("budget 8 should not find the 200-cycle")
	}
	large := build(1 << 12)
	if large.Stats().Collapsed == 0 {
		t.Error("budget 4096 should collapse the 200-cycle")
	}
}

func TestWitnessDisabled(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{NoWitness: true})
	x, y := s.Var("x"), s.Var("y")
	cNode := s.Constant(cCons)
	s.AddLowerE(cNode, x)
	s.AddVarE(x, y)
	s.Solve()
	// Queries still work; witnesses degrade to a single step.
	if !s.Flows(cNode, y) {
		t.Fatal("flow lost with NoWitness")
	}
	steps := s.Witness(y, cNode, Annot(mon.Identity()))
	if len(steps) > 1 {
		t.Errorf("NoWitness should not retain parents, got %d steps", len(steps))
	}
}

// Two separately-built constraint fragments combine correctly (the
// separate-analysis capability of bidirectional solving, §5.1).
func TestSeparateAnalysisFragments(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	s := NewSystem(alg, sig, Options{})

	// "Library" fragment, solved before the client exists: an annotated
	// path from its entry to its exit.
	libIn, libOut := s.Var("libIn"), s.Var("libOut")
	s.AddVar(libIn, libOut, annotOf(mon, "execl"))
	s.Solve()

	// "Client" fragment arrives later and links against the library.
	mainV, after := s.Var("main"), s.Var("after")
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, mainV)
	s.AddVar(mainV, libIn, annotOf(mon, "seteuid0"))
	s.AddVarE(libOut, after)
	s.Solve()

	if !s.ConstEntailed(pc, after) {
		t.Error("separately analyzed fragments should compose")
	}
}

func TestHeadAnnots(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	o := sig.MustDeclare("o", 1)
	p := sig.MustDeclare("p", 1)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	x, y, z := s.Var("x"), s.Var("y"), s.Var("z")
	fg := annotOf(mon, "g")
	s.AddLower(s.Cons(o, x), z, fg)
	s.AddLower(s.Cons(o, y), z, Annot(mon.Identity()))
	s.AddLower(s.Cons(p, x), z, fg)
	s.Solve()

	if got := s.HeadAnnots(o, z); len(got) != 2 {
		t.Errorf("HeadAnnots(o,z) = %v, want two annotations", got)
	}
	if !s.HeadEntailed(o, z) {
		t.Error("o-headed term with accepting g should be entailed")
	}
	if got := s.HeadAnnots(p, z); len(got) != 1 || got[0] != fg {
		t.Errorf("HeadAnnots(p,z) = %v", got)
	}
	q := sig.MustDeclare("q", 0)
	if s.HeadEntailed(q, z) {
		t.Error("no q-headed terms in z")
	}
}

func TestForwardVarsWithConst(t *testing.T) {
	mon := privMonoid(t)
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	_ = c // unreachable from pc
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, a)
	s.AddVar(a, b, annotOf(mon, "seteuid0", "execl"))

	fw, err := s.SolveForward([]CNode{pc})
	if err != nil {
		t.Fatal(err)
	}
	vars := fw.VarsWithConst(pc)
	if len(vars) != 2 {
		t.Errorf("VarsWithConst = %v, want [a b]", vars)
	}
	acc := fw.VarsWithConstAccepting(pc)
	if len(acc) != 1 || acc[0] != b {
		t.Errorf("VarsWithConstAccepting = %v, want [b]", acc)
	}
}

// Dead-class pruning (§3.1 / T^{M^sub}) preserves all accepting queries
// while discarding never-accepting flows.
func TestPruneDeadPreservesEntailment(t *testing.T) {
	// L = {ab}: the composition b·a is dead.
	mon := abMonoid(t)
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)

	build := func(prune bool) (*System, CNode, VarID, VarID) {
		s := NewSystem(FuncAlgebra{mon}, sig, Options{PruneDead: prune})
		x, y, z := s.Var("x"), s.Var("y"), s.Var("z")
		cn := s.Constant(cCons)
		s.AddLowerE(cn, x)
		fa, _ := mon.FuncOfNames("a")
		fb, _ := mon.FuncOfNames("b")
		s.AddVar(x, y, Annot(fb))               // "b": a live substring of ab
		s.AddVar(y, z, Annot(fb))               // "bb": dead — not a substring
		s.AddVar(x, z, Annot(mon.Then(fa, fb))) // ab: accepting
		s.Solve()
		return s, cn, y, z
	}
	pruned, cn, y, z := build(true)
	full, cn2, y2, z2 := build(false)

	// Entailment agrees.
	if pruned.ConstEntailed(cn, z) != full.ConstEntailed(cn2, z2) {
		t.Error("pruning changed entailment")
	}
	if !pruned.ConstEntailed(cn, z) {
		t.Error("ab flow should be accepting")
	}
	// The live "b" fact at y survives pruning.
	if !pruned.Flows(cn, y) || !full.Flows(cn2, y2) {
		t.Error("the live b fact should be kept by both")
	}
	// The dead "bb" fact at z is present unpruned, absent pruned.
	if got := len(full.ConstAnnots(cn2, z2)); got != 2 {
		t.Errorf("unpruned solver should see ab and bb at z: %d annots", got)
	}
	if got := len(pruned.ConstAnnots(cn, z)); got != 1 {
		t.Errorf("pruned solver should keep only ab at z: %d annots", got)
	}
	if pruned.Stats().Reach >= full.Stats().Reach {
		t.Error("pruning should reduce fact count")
	}
}

// abMonoid: L = {ab} exactly.
func abMonoid(t testing.TB) *monoid.Monoid {
	t.Helper()
	alpha := dfa.NewAlphabet("a", "b")
	d := dfa.NewDFA(alpha, 3, 0)
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	d.SetTransition(0, a, 1)
	d.SetTransition(1, b, 2)
	d.SetAccept(2)
	m, err := monoid.Build(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Forward solving with pruning stays within the prefix domain T^{M^pre}.
func TestForwardPruneDead(t *testing.T) {
	mon := abMonoid(t)
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{PruneDead: true})
	x, y := s.Var("x"), s.Var("y")
	cn := s.Constant(cCons)
	fb, _ := mon.FuncOfNames("b")
	s.AddLowerE(cn, x)
	s.AddVar(x, y, Annot(fb)) // "b" is not a prefix of ab
	fw, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Flows(cn, y) {
		t.Error("forward pruning should discard non-prefix facts")
	}
}

func TestSystemDOT(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	x, y, z := s.Var("x"), s.Var("y"), s.Var("z")
	s.AddLower(s.Constant(cCons), x, annotOf(mon, "g"))
	s.AddVarE(x, y)
	s.AddUpperE(y, s.Cons(oCons, z))
	s.AddProjE(oCons, 0, y, z)
	s.Solve()
	dot := s.DOT("")
	for _, want := range []string{"digraph", "shape=box", "style=dashed", "style=dotted", "o^-1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
