package core

import (
	"fmt"
	"strings"

	"rasc/internal/terms"
)

// VarID identifies a set variable.
type VarID int32

// CNode identifies a constructor expression c(X1,…,Xn); constants are
// constructor expressions of arity zero. Constructor expressions are
// hash-consed by default (§8).
type CNode int32

// Options configures a System; the zero value enables all optimizations.
type Options struct {
	// NoCycleElim disables partial online cycle elimination (Fähndrich et
	// al., PLDI 1998): collapsing variables connected by cycles of
	// ε-annotated edges.
	NoCycleElim bool
	// NoProjMerge disables projection merging (Su et al., POPL 2000):
	// routing all projections c^-i(Y) ⊆ Z through one intermediate
	// variable per (Y, c, i).
	NoProjMerge bool
	// NoHashCons disables hash-consing of constructor expressions.
	NoHashCons bool
	// NoWitness disables parent tracking for witness extraction, saving
	// memory in benchmarks.
	NoWitness bool
	// CycleBudget bounds the depth-first search used to detect ε-cycles
	// on edge insertion; 0 means the default (64 nodes).
	CycleBudget int
	// PruneDead discards facts and edges whose annotation is dead (not a
	// substring of L(M)): the §3.1 optimization, equivalent to solving
	// over T^{M^sub}. Off by default so that raw reachability queries see
	// every flow; analyses that only ask accepting queries should turn it
	// on.
	PruneDead bool
}

// Clash records a manifestly inconsistent constraint discovered during
// resolution: a flow from constructor Src to an incompatible constructor
// sink Dst (the "no solution" rule).
type Clash struct {
	Src, Dst CNode
	Annot    Annot
}

// stepKind tags the provenance of a derived fact for witness extraction.
type stepKind uint8

const (
	stepSeed   stepKind = iota // original lower-bound constraint
	stepEdge                   // propagated across a variable edge
	stepMerged                 // carried over by cycle elimination
)

// parent records how a reach fact was first derived.
type parent struct {
	fromVar VarID
	annot   Annot // annotation the source had at fromVar
	step    stepKind
}

// reachKey identifies a (source, annotation) fact at a variable.
type reachKey struct {
	cn CNode
	a  Annot
}

// edge is an annotated successor edge X ⊆^a Y.
type edge struct {
	to VarID
	a  Annot
}

// sinkRef is an upper bound X ⊆^a c(Y1,…,Yn).
type sinkRef struct {
	cn CNode
	a  Annot
}

// projRef is a projection constraint c^-i(X) ⊆^a Z attached at X.
type projRef struct {
	cons terms.ConsID
	idx  int
	to   VarID
	a    Annot
}

type varData struct {
	name string
	// union-find parent; self when representative.
	uf VarID

	out   []edge
	sinks []sinkRef
	projs []projRef
	reach map[reachKey]parent

	// occurrences of this var as an argument of constructor expressions,
	// used by PN-reachability queries (wrap steps).
	argOf []argUse

	// projection-merge intermediates: key (cons, idx) -> intermediate var.
	projMerge map[projMergeKey]VarID
}

type projMergeKey struct {
	cons terms.ConsID
	idx  int
}

type argUse struct {
	cn  CNode
	idx int
}

type consData struct {
	cons terms.ConsID
	args []VarID
	// occur lists the (variable, annotation) pairs this expression has
	// reached, for PN queries; it mirrors reach entries.
	occur []varAnnot
}

type varAnnot struct {
	v VarID
	a Annot
}

// workItem is a newly added reach fact awaiting rule application.
type workItem struct {
	v  VarID
	cn CNode
	a  Annot
}

// rawKind enumerates the surface constraint forms for the unidirectional
// solvers, which run over the recorded constraints independently of the
// bidirectional engine's state.
type rawKind uint8

const (
	rawVarVar rawKind = iota
	rawLower          // cn ⊆^a y
	rawUpper          // x ⊆^a cn
	rawProj           // cons^-idx(x) ⊆^a z
)

type rawConstraint struct {
	kind rawKind
	x, y VarID
	cn   CNode
	cons terms.ConsID
	idx  int
	a    Annot
}

// System is a system of regularly annotated set constraints together with
// the bidirectional solver's state. Constraints may be added at any time
// (online solving); Solve drains the work queue and is idempotent.
type System struct {
	Alg Algebra
	Sig *terms.Signature

	opts Options

	vars      []varData
	varIndex  map[string]VarID
	cons      []consData
	consIndex map[string]CNode

	edgeSeen map[edgeKey]struct{}
	sinkSeen map[edgeKey]struct{}
	projSeen map[projKey]struct{}

	work      []workItem
	clashes   []Clash
	clashSeen map[Clash]struct{}

	raw []rawConstraint

	// stats
	nEdges, nReach, nCollapsed int
}

type edgeKey struct {
	x, y int32 // y is a VarID for edges, a CNode for sinks
	a    Annot
}

type projKey struct {
	x    VarID
	cons terms.ConsID
	idx  int
	to   VarID
	a    Annot
}

// NewSystem returns an empty constraint system over the given annotation
// algebra and constructor signature.
func NewSystem(alg Algebra, sig *terms.Signature, opts Options) *System {
	if opts.CycleBudget == 0 {
		opts.CycleBudget = 64
	}
	return &System{
		Alg:       alg,
		Sig:       sig,
		opts:      opts,
		varIndex:  make(map[string]VarID),
		consIndex: make(map[string]CNode),
		edgeSeen:  make(map[edgeKey]struct{}),
		sinkSeen:  make(map[edgeKey]struct{}),
		projSeen:  make(map[projKey]struct{}),
		clashSeen: make(map[Clash]struct{}),
	}
}

// Var interns a set variable by name.
func (s *System) Var(name string) VarID {
	if v, ok := s.varIndex[name]; ok {
		return v
	}
	v := s.newVar(name)
	s.varIndex[name] = v
	return v
}

// Fresh creates an anonymous variable with a unique diagnostic name.
func (s *System) Fresh(prefix string) VarID {
	return s.newVar(fmt.Sprintf("%s#%d", prefix, len(s.vars)))
}

func (s *System) newVar(name string) VarID {
	v := VarID(len(s.vars))
	s.vars = append(s.vars, varData{
		name:  name,
		uf:    v,
		reach: make(map[reachKey]parent),
	})
	return v
}

// NumVars returns the number of variables (including projection-merge
// intermediates).
func (s *System) NumVars() int { return len(s.vars) }

// VarName returns the diagnostic name of v.
func (s *System) VarName(v VarID) string { return s.vars[v].name }

// Rep returns the union-find representative of v; variables collapsed by
// cycle elimination share one representative.
func (s *System) Rep(v VarID) VarID { return s.find(v) }

// find returns the union-find representative of v, with path compression.
func (s *System) find(v VarID) VarID {
	root := v
	for s.vars[root].uf != root {
		root = s.vars[root].uf
	}
	for s.vars[v].uf != v {
		next := s.vars[v].uf
		s.vars[v].uf = root
		v = next
	}
	return root
}

// Cons interns the constructor expression c(args...). With hash-consing
// disabled every call creates a fresh node.
func (s *System) Cons(c terms.ConsID, args ...VarID) CNode {
	if got, want := len(args), s.Sig.Arity(c); got != want {
		panic(fmt.Sprintf("core: %s applied to %d args, want %d", s.Sig.Name(c), got, want))
	}
	var key string
	if !s.opts.NoHashCons {
		var b strings.Builder
		fmt.Fprintf(&b, "%d(", c)
		for i, a := range args {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", a)
		}
		b.WriteByte(')')
		key = b.String()
		if cn, ok := s.consIndex[key]; ok {
			return cn
		}
	}
	cn := CNode(len(s.cons))
	s.cons = append(s.cons, consData{cons: c, args: append([]VarID{}, args...)})
	for i, a := range args {
		s.vars[a].argOf = append(s.vars[a].argOf, argUse{cn, i})
	}
	if !s.opts.NoHashCons {
		s.consIndex[key] = cn
	}
	return cn
}

// Constant interns a constant (arity-0 constructor expression).
func (s *System) Constant(c terms.ConsID) CNode { return s.Cons(c) }

// ConsOf returns the constructor of cn.
func (s *System) ConsOf(cn CNode) terms.ConsID { return s.cons[cn].cons }

// ArgsOf returns the argument variables of cn (do not mutate).
func (s *System) ArgsOf(cn CNode) []VarID { return s.cons[cn].args }

// ConsString renders cn for diagnostics.
func (s *System) ConsString(cn CNode) string {
	d := s.cons[cn]
	if len(d.args) == 0 {
		return s.Sig.Name(d.cons)
	}
	var b strings.Builder
	b.WriteString(s.Sig.Name(d.cons))
	b.WriteByte('(')
	for i, a := range d.args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.vars[a].name)
	}
	b.WriteByte(')')
	return b.String()
}

// Clashes returns the inconsistencies discovered so far.
func (s *System) Clashes() []Clash { return s.clashes }

// Consistent reports whether no clash has been discovered.
func (s *System) Consistent() bool { return len(s.clashes) == 0 }

// Stats reports solver counters: variables, constructor expressions,
// distinct propagated facts, distinct edges, and variables eliminated by
// cycle collapsing.
type Stats struct {
	Vars      int
	ConsNodes int
	Reach     int
	Edges     int
	Collapsed int
	Clashes   int
}

// Stats returns current solver statistics.
func (s *System) Stats() Stats {
	return Stats{
		Vars:      len(s.vars),
		ConsNodes: len(s.cons),
		Reach:     s.nReach,
		Edges:     s.nEdges,
		Collapsed: s.nCollapsed,
		Clashes:   len(s.clashes),
	}
}
