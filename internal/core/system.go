package core

import (
	"fmt"
	"strconv"
	"strings"

	"rasc/internal/obs"
	"rasc/internal/terms"
)

// VarID identifies a set variable.
type VarID int32

// CNode identifies a constructor expression c(X1,…,Xn); constants are
// constructor expressions of arity zero. Constructor expressions are
// hash-consed by default (§8).
type CNode int32

// Options configures a System; the zero value enables all optimizations.
type Options struct {
	// NoCycleElim disables partial online cycle elimination (Fähndrich et
	// al., PLDI 1998): collapsing variables connected by cycles of
	// ε-annotated edges.
	NoCycleElim bool
	// NoProjMerge disables projection merging (Su et al., POPL 2000):
	// routing all projections c^-i(Y) ⊆ Z through one intermediate
	// variable per (Y, c, i).
	NoProjMerge bool
	// NoHashCons disables hash-consing of constructor expressions.
	NoHashCons bool
	// NoWitness disables parent tracking for witness extraction, saving
	// memory in benchmarks.
	NoWitness bool
	// CycleBudget bounds the depth-first search used to detect ε-cycles
	// on edge insertion; 0 means the default (64 nodes).
	CycleBudget int
	// PruneDead discards facts and edges whose annotation is dead (not a
	// substring of L(M)): the §3.1 optimization, equivalent to solving
	// over T^{M^sub}. Off by default so that raw reachability queries see
	// every flow; analyses that only ask accepting queries should turn it
	// on.
	PruneDead bool
}

// Clash records a manifestly inconsistent constraint discovered during
// resolution: a flow from constructor Src to an incompatible constructor
// sink Dst (the "no solution" rule).
type Clash struct {
	Src, Dst CNode
	Annot    Annot
}

// stepKind tags the provenance of a derived fact for witness extraction.
type stepKind uint8

const (
	stepSeed   stepKind = iota // original lower-bound constraint
	stepEdge                   // propagated across a variable edge
	stepMerged                 // carried over by cycle elimination
)

// parent records how a reach fact was first derived.
type parent struct {
	fromVar VarID
	annot   Annot // annotation the source had at fromVar
	step    stepKind
}

// reachKey identifies a (source, annotation) fact at a variable. The
// bidirectional solver stores facts in per-var reachSets; this key form
// survives for the unidirectional solvers' fact tables.
type reachKey struct {
	cn CNode
	a  Annot
}

// edge is an annotated successor edge X ⊆^a Y.
type edge struct {
	to VarID
	a  Annot
}

// sinkRef is an upper bound X ⊆^a c(Y1,…,Yn).
type sinkRef struct {
	cn CNode
	a  Annot
}

// projRef is a projection constraint c^-i(X) ⊆^a Z attached at X.
type projRef struct {
	cons terms.ConsID
	idx  int
	to   VarID
	a    Annot
}

type varData struct {
	// Diagnostic identity, resolved lazily by VarName: an explicit name
	// (Var), a shared prefix index (Fresh; rendered as prefix#id on
	// demand), or neither (Anon; rendered by the NameFn hook).
	name   string
	prefix int32 // 1-based index into freshPrefixes, 0 = none

	// union-find parent; self when representative.
	uf VarID

	out   []edge
	sinks []sinkRef
	projs []projRef
	reach reachSet

	// occurrences of this var as an argument of constructor expressions,
	// used by PN-reachability queries (wrap steps).
	argOf []argUse

	// projection-merge intermediates: key (cons, idx) -> intermediate var.
	projMerge map[projMergeKey]VarID
}

type projMergeKey struct {
	cons terms.ConsID
	idx  int
}

type argUse struct {
	cn  CNode
	idx int
}

type consData struct {
	cons terms.ConsID
	args []VarID
	// occur lists the (variable, annotation) pairs this expression has
	// reached, for PN queries; it mirrors reach entries.
	occur []varAnnot
}

type varAnnot struct {
	v VarID
	a Annot
}

// workItem is a newly added reach fact awaiting rule application.
type workItem struct {
	v  VarID
	cn CNode
	a  Annot
}

// rawKind enumerates the surface constraint forms for the unidirectional
// solvers, which run over the recorded constraints independently of the
// bidirectional engine's state.
type rawKind uint8

const (
	rawVarVar rawKind = iota
	rawLower          // cn ⊆^a y
	rawUpper          // x ⊆^a cn
	rawProj           // cons^-idx(x) ⊆^a z
)

type rawConstraint struct {
	kind rawKind
	x, y VarID
	cn   CNode
	cons terms.ConsID
	idx  int
	a    Annot
}

// System is a system of regularly annotated set constraints together with
// the bidirectional solver's state. Constraints may be added at any time
// (online solving); Solve drains the work queue and is idempotent.
type System struct {
	Alg Algebra
	Sig *terms.Signature

	opts Options

	vars      []varData
	varIndex  internMap[string, VarID]
	cons      []consData
	consIndex internMap[consKey, CNode]

	// Interned prefixes of Fresh variables and the fallback renderer for
	// anonymous ones; names are materialized only when VarName is asked.
	freshPrefixes []string
	prefixIndex   map[string]int32
	nameFn        func(VarID) string

	edgeSeen seenSet[edgeKey]
	sinkSeen seenSet[edgeKey]
	projSeen seenSet[projKey]

	work      []workItem
	clashes   []Clash
	clashSeen seenSet[Clash]

	raw []rawConstraint

	// Scratch for tryCollapse's bounded DFS, reused across edge
	// insertions so cycle detection allocates nothing in steady state.
	dfsMark  []uint32
	dfsPrev  []VarID
	dfsStack []VarID
	dfsEpoch uint32

	// stats
	nEdges, nReach, nCollapsed int

	// Optional observability hooks. Lives outside Options (which is
	// comparable and serialized into cache keys) and is nil unless a
	// caller opts in through SetMetrics; every hook site gates on one
	// nil test.
	metrics *obs.SolverMetrics
}

type edgeKey struct {
	x, y int32 // y is a VarID for edges, a CNode for sinks
	a    Annot
}

type projKey struct {
	x    VarID
	cons terms.ConsID
	idx  int
	to   VarID
	a    Annot
}

// consKey identifies a constructor expression for hash-consing without
// rendering it to a string: the constructor, the arity, the first three
// arguments inline, and (only for wider expressions) the remaining
// arguments encoded in rest. Interning an expression of arity ≤ 3 —
// every constructor the model checker and flow analyses emit — allocates
// nothing.
type consKey struct {
	c    terms.ConsID
	n    int32
	args [3]VarID
	rest string
}

func makeConsKey(c terms.ConsID, args []VarID) consKey {
	k := consKey{c: c, n: int32(len(args))}
	for i, a := range args {
		if i == 3 {
			var b strings.Builder
			for _, r := range args[3:] {
				b.WriteByte(',')
				b.WriteString(strconv.Itoa(int(r)))
			}
			k.rest = b.String()
			break
		}
		k.args[i] = a
	}
	return k
}

// NewSystem returns an empty constraint system over the given annotation
// algebra and constructor signature.
func NewSystem(alg Algebra, sig *terms.Signature, opts Options) *System {
	if opts.CycleBudget == 0 {
		opts.CycleBudget = 64
	}
	return &System{
		Alg:         alg,
		Sig:         sig,
		opts:        opts,
		varIndex:    newInternMap[string, VarID](),
		consIndex:   newInternMap[consKey, CNode](),
		prefixIndex: make(map[string]int32),
		edgeSeen:    newSeenSet[edgeKey](),
		sinkSeen:    newSeenSet[edgeKey](),
		projSeen:    newSeenSet[projKey](),
		clashSeen:   newSeenSet[Clash](),
		work:        make([]workItem, 0, 64),
	}
}

// ReserveVars grows the variable table's capacity so that the next n
// variable creations do not reallocate it. Purely an allocation hint.
func (s *System) ReserveVars(n int) {
	if need := len(s.vars) + n; need > cap(s.vars) {
		grown := make([]varData, len(s.vars), need)
		copy(grown, s.vars)
		s.vars = grown
	}
}

// Var interns a set variable by name.
func (s *System) Var(name string) VarID {
	if v, ok := s.varIndex.get(name); ok {
		return v
	}
	v := s.newVar()
	s.vars[v].name = name
	s.varIndex.put(name, v)
	return v
}

// Fresh creates an anonymous variable with a unique diagnostic name of
// the form prefix#id. The name is not materialized: only the interned
// prefix is stored, and VarName renders it on demand.
func (s *System) Fresh(prefix string) VarID {
	v := s.newVar()
	s.vars[v].prefix = s.internPrefix(prefix)
	return v
}

// Anon creates an unnamed variable, bypassing the name intern table
// entirely; VarName falls back to the NameFn hook, or "v<id>". This is
// the cheapest way to create variables in bulk (the model checker names
// its CFG-node variables through NameFn).
func (s *System) Anon() VarID { return s.newVar() }

// SetNameFn installs a renderer for variables created by Anon, used only
// when diagnostics ask for VarName.
func (s *System) SetNameFn(fn func(VarID) string) { s.nameFn = fn }

func (s *System) internPrefix(prefix string) int32 {
	if i, ok := s.prefixIndex[prefix]; ok {
		return i
	}
	s.freshPrefixes = append(s.freshPrefixes, prefix)
	i := int32(len(s.freshPrefixes))
	s.prefixIndex[prefix] = i
	return i
}

func (s *System) newVar() VarID {
	v := VarID(len(s.vars))
	s.vars = append(s.vars, varData{uf: v})
	return v
}

// NumVars returns the number of variables (including projection-merge
// intermediates).
func (s *System) NumVars() int { return len(s.vars) }

// NumConsNodes returns the number of interned constructor expressions;
// every valid CNode is below it.
func (s *System) NumConsNodes() int { return len(s.cons) }

// VarName returns the diagnostic name of v.
func (s *System) VarName(v VarID) string {
	d := &s.vars[v]
	switch {
	case d.name != "":
		return d.name
	case d.prefix != 0:
		return s.freshPrefixes[d.prefix-1] + "#" + strconv.Itoa(int(v))
	case s.nameFn != nil:
		if n := s.nameFn(v); n != "" {
			return n
		}
	}
	return "v" + strconv.Itoa(int(v))
}

// Rep returns the union-find representative of v; variables collapsed by
// cycle elimination share one representative.
func (s *System) Rep(v VarID) VarID { return s.find(v) }

// find returns the union-find representative of v, with path compression.
func (s *System) find(v VarID) VarID {
	root := v
	for s.vars[root].uf != root {
		root = s.vars[root].uf
	}
	for s.vars[v].uf != v {
		next := s.vars[v].uf
		s.vars[v].uf = root
		v = next
	}
	return root
}

// Cons interns the constructor expression c(args...). With hash-consing
// disabled every call creates a fresh node.
func (s *System) Cons(c terms.ConsID, args ...VarID) CNode {
	if got, want := len(args), s.Sig.Arity(c); got != want {
		panic(fmt.Sprintf("core: %s applied to %d args, want %d", s.Sig.Name(c), got, want))
	}
	var key consKey
	if !s.opts.NoHashCons {
		key = makeConsKey(c, args)
		if cn, ok := s.consIndex.get(key); ok {
			return cn
		}
	}
	cn := CNode(len(s.cons))
	s.cons = append(s.cons, consData{cons: c, args: append([]VarID{}, args...)})
	// Occurrences live on the representative: an append at a variable
	// that already lost a union would be invisible to PN-reachability
	// (union only migrates occurrences recorded before the merge).
	for i, a := range args {
		s.vars[s.find(a)].argOf = append(s.vars[s.find(a)].argOf, argUse{cn, i})
	}
	if !s.opts.NoHashCons {
		s.consIndex.put(key, cn)
	}
	return cn
}

// Constant interns a constant (arity-0 constructor expression).
func (s *System) Constant(c terms.ConsID) CNode { return s.Cons(c) }

// ConsOf returns the constructor of cn.
func (s *System) ConsOf(cn CNode) terms.ConsID { return s.cons[cn].cons }

// ArgsOf returns the argument variables of cn (do not mutate).
func (s *System) ArgsOf(cn CNode) []VarID { return s.cons[cn].args }

// ConsString renders cn for diagnostics.
func (s *System) ConsString(cn CNode) string {
	d := s.cons[cn]
	if len(d.args) == 0 {
		return s.Sig.Name(d.cons)
	}
	var b strings.Builder
	b.WriteString(s.Sig.Name(d.cons))
	b.WriteByte('(')
	for i, a := range d.args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.VarName(a))
	}
	b.WriteByte(')')
	return b.String()
}

// Clashes returns the inconsistencies discovered so far.
func (s *System) Clashes() []Clash { return s.clashes }

// Consistent reports whether no clash has been discovered.
func (s *System) Consistent() bool { return len(s.clashes) == 0 }

// Stats reports solver counters: variables, constructor expressions,
// distinct propagated facts, distinct edges, and variables eliminated by
// cycle collapsing.
type Stats struct {
	Vars      int
	ConsNodes int
	Reach     int
	Edges     int
	Collapsed int
	Clashes   int
}

// Minus returns the component-wise difference s - base: the work done on
// top of a forked base system, for reporting that shared structure only
// once.
func (s Stats) Minus(base Stats) Stats {
	return Stats{
		Vars:      s.Vars - base.Vars,
		ConsNodes: s.ConsNodes - base.ConsNodes,
		Reach:     s.Reach - base.Reach,
		Edges:     s.Edges - base.Edges,
		Collapsed: s.Collapsed - base.Collapsed,
		Clashes:   s.Clashes - base.Clashes,
	}
}

// Stats returns current solver statistics.
func (s *System) Stats() Stats {
	return Stats{
		Vars:      len(s.vars),
		ConsNodes: len(s.cons),
		Reach:     s.nReach,
		Edges:     s.nEdges,
		Collapsed: s.nCollapsed,
		Clashes:   len(s.clashes),
	}
}

// SetMetrics attaches (or, with nil, detaches) a solver metrics bundle.
// Hook sites fire only while a bundle is attached; counts are deltas
// from the moment of attachment, not a replay of prior work. Forks
// inherit the receiver's bundle.
func (s *System) SetMetrics(m *obs.SolverMetrics) { s.metrics = m }

// FlushSizeMetrics samples per-representative reach-set sizes into the
// attached bundle's ReachSetSize histogram. Call once per solved
// system; a no-op without an attached bundle.
func (s *System) FlushSizeMetrics() {
	if s.metrics == nil {
		return
	}
	for v := range s.vars {
		if s.vars[v].uf != VarID(v) {
			continue
		}
		s.metrics.ReachSetSize.Observe(int64(len(s.vars[v].reach.facts)))
	}
}
