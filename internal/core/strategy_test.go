package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// randomAtomicSystem builds a random system in the atomic fragment
// (var-var edges + constant lower bounds) over the given monoid.
func randomAtomicSystem(r *rand.Rand, mon *monoid.Monoid, nVars, nEdges, nConsts int) (*System, []CNode, []VarID) {
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	s := NewSystem(alg, sig, Options{})
	vars := make([]VarID, nVars)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	var consts []CNode
	for i := 0; i < nConsts; i++ {
		c := sig.MustDeclare("k"+string(rune('a'+i)), 0)
		cn := s.Constant(c)
		consts = append(consts, cn)
		s.AddLower(cn, vars[r.Intn(nVars)], Annot(r.Intn(mon.Size())))
	}
	for i := 0; i < nEdges; i++ {
		a := Annot(mon.Identity())
		if r.Intn(3) != 0 {
			a = Annot(r.Intn(mon.Size()))
		}
		s.AddVar(vars[r.Intn(nVars)], vars[r.Intn(nVars)], a)
	}
	return s, consts, vars
}

// Property: forward solving agrees with bidirectional solving on constant
// entailment (the right-congruence quotient is lossless for queries, §5).
func TestQuickForwardAgreesWithBidirectional(t *testing.T) {
	mon := privMonoid(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, consts, vars := randomAtomicSystem(r, mon, 6, 14, 3)
		s.Solve()
		fw, err := s.SolveForward(nil)
		if err != nil {
			return false
		}
		for _, cn := range consts {
			for _, v := range vars {
				if s.ConstEntailed(cn, v) != fw.ConstEntailed(cn, v) {
					return false
				}
				if s.Flows(cn, v) != fw.Flows(cn, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: backward solving agrees with bidirectional solving on constant
// entailment in the atomic fragment.
func TestQuickBackwardAgreesWithBidirectional(t *testing.T) {
	mon := privMonoid(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, consts, vars := randomAtomicSystem(r, mon, 6, 14, 3)
		s.Solve()
		bw, err := s.SolveBackward(vars)
		if err != nil {
			return false
		}
		for _, cn := range consts {
			for _, v := range vars {
				if s.ConstEntailed(cn, v) != bw.ConstEntailed(cn, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the optimizations (cycle elimination, projection merging,
// hash-consing) do not change query answers.
func TestQuickOptimizationsPreserveSemantics(t *testing.T) {
	mon := oneBitMonoid(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		build := func(opts Options) (*System, []CNode, []VarID) {
			rr := rand.New(rand.NewSource(seed)) // same stream per variant
			alg := FuncAlgebra{mon}
			sig := terms.NewSignature()
			s := NewSystem(alg, sig, opts)
			const nVars = 7
			vars := make([]VarID, nVars)
			for i := range vars {
				vars[i] = s.Fresh("v")
			}
			ka := sig.MustDeclare("ka", 0)
			pair := sig.MustDeclare("pair", 2)
			cn := s.Constant(ka)
			s.AddLower(cn, vars[rr.Intn(nVars)], Annot(rr.Intn(mon.Size())))
			for i := 0; i < 10; i++ {
				a := Annot(mon.Identity())
				if rr.Intn(2) == 0 {
					a = Annot(rr.Intn(mon.Size()))
				}
				switch rr.Intn(5) {
				case 0:
					s.AddLower(s.Cons(pair, vars[rr.Intn(nVars)], vars[rr.Intn(nVars)]), vars[rr.Intn(nVars)], a)
				case 1:
					s.AddUpper(vars[rr.Intn(nVars)], s.Cons(pair, vars[rr.Intn(nVars)], vars[rr.Intn(nVars)]), a)
				case 2:
					s.AddProj(pair, rr.Intn(2), vars[rr.Intn(nVars)], vars[rr.Intn(nVars)], a)
				default:
					s.AddVar(vars[rr.Intn(nVars)], vars[rr.Intn(nVars)], a)
				}
			}
			s.Solve()
			return s, []CNode{cn}, vars
		}
		base, consts, vars := build(Options{})
		for _, opts := range []Options{
			{NoCycleElim: true},
			{NoProjMerge: true},
			{NoHashCons: true},
			{NoCycleElim: true, NoProjMerge: true, NoHashCons: true, NoWitness: true},
		} {
			alt, altConsts, altVars := build(opts)
			for ci := range consts {
				for vi := range vars {
					got := alt.ConstAnnots(altConsts[ci], altVars[vi])
					want := base.ConstAnnots(consts[ci], vars[vi])
					if len(got) != len(want) {
						return false
					}
					for i := range got {
						if got[i] != want[i] {
							return false
						}
					}
				}
			}
			if base.Consistent() != alt.Consistent() {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: solving is monotone — adding constraints never removes
// entailed facts (soundness of online solving).
func TestQuickOnlineMonotone(t *testing.T) {
	mon := privMonoid(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, consts, vars := randomAtomicSystem(r, mon, 5, 8, 2)
		s.Solve()
		type fact struct {
			cn CNode
			v  VarID
			a  Annot
		}
		var before []fact
		for _, cn := range consts {
			for _, v := range vars {
				for _, a := range s.ConstAnnots(cn, v) {
					before = append(before, fact{cn, v, a})
				}
			}
		}
		// Add more constraints and re-solve.
		for i := 0; i < 5; i++ {
			s.AddVar(vars[r.Intn(len(vars))], vars[r.Intn(len(vars))], Annot(r.Intn(mon.Size())))
		}
		s.Solve()
		for _, f := range before {
			found := false
			for _, a := range s.ConstAnnots(f.cn, f.v) {
				if a == f.a {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Forward solving can be demand driven (§5.1): restricting demand to one
// constant yields the same answers for it and skips the others.
func TestForwardDemandDriven(t *testing.T) {
	mon := privMonoid(t)
	r := rand.New(rand.NewSource(7))
	s, consts, vars := randomAtomicSystem(r, mon, 8, 20, 3)
	s.Solve()
	fw, err := s.SolveForward([]CNode{consts[0]})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		if fw.ConstEntailed(consts[0], v) != full.ConstEntailed(consts[0], v) {
			t.Fatal("demand-driven answer differs for demanded constant")
		}
	}
	if fw.Facts() > full.Facts() {
		t.Error("demand-driven solving should not do more work")
	}
}

// The forward solver handles the full rule set: reproduce the Example 2.4
// system forward and check the derived flow.
func TestForwardStructuralAndProjection(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)

	s := NewSystem(alg, sig, Options{})
	W, X, Y, Z, P := s.Var("W"), s.Var("X"), s.Var("Y"), s.Var("Z"), s.Var("P")
	fg := annotOf(mon, "g")
	cNode := s.Constant(cCons)
	s.AddLower(cNode, W, fg)
	s.AddLower(s.Cons(oCons, W), X, fg)
	s.AddUpper(X, s.Cons(oCons, Y), Annot(mon.Identity()))
	s.AddProjE(oCons, 0, X, P)
	s.AddVarE(Y, Z)

	fw, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Structural: W ⊆^{fg} Y, so c is at Z via Y with accepting state.
	if !fw.ConstEntailed(cNode, Z) {
		t.Error("forward solver missed the structural+transitive flow")
	}
	// Projection: o^-1(X) ⊆ P gives c at P.
	if !fw.ConstEntailed(cNode, P) {
		t.Error("forward solver missed the projection flow")
	}
	// Agreement with bidirectional.
	s.Solve()
	for _, v := range []VarID{W, X, Y, Z, P} {
		if s.ConstEntailed(cNode, v) != fw.ConstEntailed(cNode, v) {
			t.Errorf("forward/bidirectional disagree at %s", s.VarName(v))
		}
	}
}

func TestForwardClash(t *testing.T) {
	sig := terms.NewSignature()
	c := sig.MustDeclare("c", 1)
	d := sig.MustDeclare("d", 1)
	mon := oneBitMonoid(t)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	X, Y, V := s.Var("X"), s.Var("Y"), s.Var("V")
	s.AddLowerE(s.Cons(c, X), V)
	s.AddUpperE(V, s.Cons(d, Y))
	fw, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Clashes()) != 1 {
		t.Errorf("forward solver found %d clashes, want 1", len(fw.Clashes()))
	}
}

func TestBackwardRejectsStructure(t *testing.T) {
	sig := terms.NewSignature()
	c := sig.MustDeclare("c", 1)
	mon := oneBitMonoid(t)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	X, V := s.Var("X"), s.Var("V")
	s.AddLowerE(s.Cons(c, X), V)
	if _, err := s.SolveBackward([]VarID{V}); err == nil {
		t.Error("backward solver should reject constructor constraints")
	}
}

func TestBackwardBits(t *testing.T) {
	mon := privMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	pcCons := sig.MustDeclare("pc", 0)
	s := NewSystem(alg, sig, Options{})
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	pc := s.Constant(pcCons)
	s.AddLowerE(pc, a)
	s.AddVar(a, b, annotOf(mon, "seteuid0"))
	s.AddVar(b, c, annotOf(mon, "execl"))

	bw, err := s.SolveBackward([]VarID{c})
	if err != nil {
		t.Fatal(err)
	}
	if !bw.ConstEntailed(pc, c) {
		t.Error("backward solver missed the violation")
	}
	// The bitset at b must contain exactly the states from which execl
	// accepts: Priv (1) and the Error sink (2), but not Unpriv (0).
	if bits := bw.BitsAt(c, b); bits != 0b110 {
		t.Errorf("bits at b = %b, want 110", bits)
	}
	// At a: seteuid0 then execl accepts from Unpriv and Priv, and Error
	// stays accepting: 111.
	if bits := bw.BitsAt(c, a); bits != 0b111 {
		t.Errorf("bits at a = %b, want 111", bits)
	}
	if bw.ConstEntailed(pc, a) {
		t.Error("pc ⊆ a alone does not put pc at target c... (wrong target)")
	}
}

// The §5 work-measure claim: on a family with a large monoid (Figure 2)
// and long annotated chains, forward solving derives at most |S| facts per
// (constant, var) while bidirectional solving can derive up to |F|.
func TestStrategyWorkGap(t *testing.T) {
	mon, err := monoid.Build(monoid.Adversarial(4), 1<<16) // |F| = 256, |S| = 4
	if err != nil {
		t.Fatal(err)
	}
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	s := NewSystem(alg, sig, Options{})
	const n = 10
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	ca := s.Constant(a)
	s.AddLowerE(ca, vars[0])
	syms := []Annot{annotOf(mon, "rotate"), annotOf(mon, "swap"), annotOf(mon, "merge")}
	for i := 0; i < n; i++ {
		for j, sym := range syms {
			s.AddVar(vars[i], vars[(i+j+1)%n], sym)
		}
	}
	s.Solve()
	fw, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	bidirFacts := s.Stats().Reach
	fwdFacts := fw.Facts()
	if fwdFacts > n*mon.M.NumStates {
		t.Errorf("forward facts %d exceed n·|S| = %d", fwdFacts, n*mon.M.NumStates)
	}
	if bidirFacts <= fwdFacts {
		t.Errorf("expected bidirectional (%d facts) to exceed forward (%d facts) on the adversarial machine",
			bidirFacts, fwdFacts)
	}
	// Both agree on entailment.
	for _, v := range vars {
		if s.ConstEntailed(ca, v) != fw.ConstEntailed(ca, v) {
			t.Fatal("strategies disagree")
		}
	}
}

// Direct constructor-constructor constraints must be visible to the
// unidirectional solvers too.
func TestForwardSeesConsCons(t *testing.T) {
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	a := sig.MustDeclare("a", 0)
	o := sig.MustDeclare("o", 1)
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	x, y := s.Var("x"), s.Var("y")
	ca := s.Constant(a)
	s.AddLower(ca, x, annotOf(mon, "g"))
	s.AddConsCons(s.Cons(o, x), s.Cons(o, y), Annot(mon.Identity()))
	s.Solve()
	if !s.ConstEntailed(ca, y) {
		t.Fatal("bidirectional lost the cons-cons flow")
	}
	fw, err := s.SolveForward(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fw.ConstEntailed(ca, y) {
		t.Error("forward solver must see cons-cons constraints")
	}
}
