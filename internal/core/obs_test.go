package core

import (
	"testing"

	"rasc/internal/obs"
	"rasc/internal/terms"
)

// TestStatsMinusNegativeDelta pins the edge case where the "base" has
// more work than the derived snapshot (e.g. comparing independent
// systems): Minus is a plain component-wise difference and must report
// negative deltas rather than clamping them, so callers can detect a
// mismatched base.
func TestStatsMinusNegativeDelta(t *testing.T) {
	a := Stats{Vars: 2, ConsNodes: 1, Reach: 3, Edges: 1, Collapsed: 0, Clashes: 0}
	b := Stats{Vars: 5, ConsNodes: 4, Reach: 10, Edges: 7, Collapsed: 2, Clashes: 1}
	got := a.Minus(b)
	want := Stats{Vars: -3, ConsNodes: -3, Reach: -7, Edges: -6, Collapsed: -2, Clashes: -1}
	if got != want {
		t.Fatalf("Minus = %+v, want %+v", got, want)
	}
	if zero := a.Minus(a); zero != (Stats{}) {
		t.Fatalf("x.Minus(x) = %+v, want zero", zero)
	}
}

// buildInstrumented builds and solves a small system with a metrics
// bundle attached, returning both.
func buildInstrumented(t *testing.T, reg *obs.Registry) *System {
	t.Helper()
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)

	s := NewSystem(alg, sig, Options{})
	s.SetMetrics(obs.NewSolverMetrics(reg))
	W, X, Y, Z := s.Var("W"), s.Var("X"), s.Var("Y"), s.Var("Z")
	fg := annotOf(mon, "g")

	cNode := s.Constant(cCons)
	s.AddLower(cNode, W, fg)
	s.AddVar(W, X, fg)
	s.AddVarE(X, Y)
	s.AddUpper(Y, s.Cons(oCons, Z), alg.Identity())
	s.Solve()
	return s
}

// TestSolverMetricsMatchStats checks that the hook counters agree with
// the solver's own Stats counters, and that attaching metrics does not
// change what is derived.
func TestSolverMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	s := buildInstrumented(t, reg)
	st := s.Stats()
	snap := reg.Snapshot()

	if got := snap.Counters["solver.edges_added"]; got != int64(st.Edges) {
		t.Errorf("edges_added = %d, want %d", got, st.Edges)
	}
	if got := snap.Counters["solver.reach_inserts"]; got != int64(st.Reach) {
		t.Errorf("reach_inserts = %d, want %d", got, st.Reach)
	}
	if got := snap.Counters["solver.cycle_eliminations"]; got != int64(st.Collapsed) {
		t.Errorf("cycle_eliminations = %d, want %d", got, st.Collapsed)
	}
	// Every reach insert schedules exactly one work item.
	if got := snap.Counters["solver.worklist_pushes"]; got != int64(st.Reach) {
		t.Errorf("worklist_pushes = %d, want %d", got, st.Reach)
	}
	if snap.Gauges["solver.worklist_high_water"] < 1 {
		t.Error("worklist high-water never rose above zero")
	}
	if snap.Counters["solver.compositions"] == 0 {
		t.Error("no compositions counted")
	}

	// Same system without metrics derives identical stats.
	plain := buildInstrumented(t, nil)
	if plain.Stats() != st {
		t.Errorf("stats with metrics %+v != without %+v", st, plain.Stats())
	}
}

// TestCycleElimMetric drives the collapse path with a metrics bundle.
func TestCycleElimMetric(t *testing.T) {
	reg := obs.NewRegistry()
	mon := oneBitMonoid(t)
	sig := terms.NewSignature()
	s := NewSystem(FuncAlgebra{mon}, sig, Options{})
	s.SetMetrics(obs.NewSolverMetrics(reg))
	x, y := s.Var("x"), s.Var("y")
	s.AddVarE(x, y)
	s.AddVarE(y, x)
	s.Solve()
	if s.Stats().Collapsed == 0 {
		t.Fatal("cycle not collapsed")
	}
	if got := reg.Counter("solver.cycle_eliminations").Value(); got != int64(s.Stats().Collapsed) {
		t.Fatalf("cycle_eliminations = %d, want %d", got, s.Stats().Collapsed)
	}
}

// TestFlushSizeMetrics samples the reach-set size histogram: one
// observation per representative variable.
func TestFlushSizeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := buildInstrumented(t, reg)
	s.FlushSizeMetrics()
	reps := 0
	for v := 0; v < s.NumVars(); v++ {
		if s.Rep(VarID(v)) == VarID(v) {
			reps++
		}
	}
	h := reg.Histogram("solver.reach_set_size", obs.DefaultSizeBounds)
	if h.Count() != int64(reps) {
		t.Fatalf("histogram count = %d, want %d representatives", h.Count(), reps)
	}
	// Nil-metrics flush is a no-op.
	plain := buildInstrumented(t, nil)
	plain.FlushSizeMetrics()
}

// TestForkInheritsMetrics checks that a forked system keeps feeding the
// parent's bundle.
func TestForkInheritsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := buildInstrumented(t, reg)
	s.Freeze()
	before := reg.Counter("solver.edges_added").Value()
	f := s.Fork(s.Alg)
	f.AddVarE(f.Var("W"), f.Var("fresh"))
	f.Solve()
	if reg.Counter("solver.edges_added").Value() <= before {
		t.Fatal("fork did not feed the inherited metrics bundle")
	}
}

// TestProvenanceChain checks the rendered derivation chain: oldest
// first, seeded, ending at the queried fact.
func TestProvenanceChain(t *testing.T) {
	mon := oneBitMonoid(t)
	alg := FuncAlgebra{mon}
	sig := terms.NewSignature()
	cCons := sig.MustDeclare("c", 0)

	s := NewSystem(alg, sig, Options{})
	W, X, Y := s.Var("W"), s.Var("X"), s.Var("Y")
	fg := annotOf(mon, "g")
	cNode := s.Constant(cCons)
	s.AddLower(cNode, W, fg)
	s.AddVar(W, X, fg)
	s.AddVar(X, Y, fg)
	s.Solve()

	prov := s.ProvenanceOf(Y, cNode, fg)
	if len(prov) != 3 {
		t.Fatalf("provenance length = %d, want 3 (%v)", len(prov), prov)
	}
	if prov[0].Rule != ProvSeed || prov[0].Var != W {
		t.Errorf("first hop = %+v, want seed at W", prov[0])
	}
	for _, st := range prov[1:] {
		if st.Rule != ProvEdge {
			t.Errorf("hop %+v, want rule edge", st)
		}
	}
	if last := prov[len(prov)-1]; last.Var != Y || last.Annot != fg {
		t.Errorf("last hop = %+v, want (Y, fg)", last)
	}

	// PN-level provenance agrees for the same top-level fact.
	pn := s.PNReach(cNode)
	pnProv := pn.Provenance(Y, fg)
	if len(pnProv) == 0 || pnProv[0].Rule != ProvSeed {
		t.Fatalf("PN provenance = %v, want seeded chain", pnProv)
	}
	if last := pnProv[len(pnProv)-1]; last.Var != Y {
		t.Errorf("PN last hop = %+v, want Y", last)
	}

	// Witness tracking off → no provenance, not a panic.
	off := NewSystem(alg, sig, Options{NoWitness: true})
	w2 := off.Var("W")
	c2 := off.Constant(cCons)
	off.AddLower(c2, w2, fg)
	x2 := off.Var("X")
	off.AddVar(w2, x2, fg)
	off.Solve()
	if got := off.ProvenanceOf(x2, c2, fg); len(got) > 1 {
		t.Errorf("NoWitness provenance = %v, want at most the fact itself", got)
	}
}
