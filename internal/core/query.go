package core

import (
	"fmt"
	"sort"
	"strings"

	"rasc/internal/monoid"
	"rasc/internal/terms"
)

// This file implements the query phase (§3.2). The solver does not
// materialize representative-function variables during resolution; queries
// reconstruct the needed function information from the composed path
// annotations stored in the reach tables.

// SourceFact is one entailed lower bound: constructor expression Cn is in
// the queried variable with composed annotation A.
type SourceFact struct {
	Cn CNode
	A  Annot
}

// SourcesAt returns all constructor expressions (with annotations) known
// to flow into v, in deterministic order. Solve must have been called.
func (s *System) SourcesAt(v VarID) []SourceFact {
	v = s.find(v)
	facts := s.vars[v].reach.facts
	out := make([]SourceFact, 0, len(facts))
	for i := range facts {
		out = append(out, SourceFact{facts[i].cn, facts[i].a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cn != out[j].Cn {
			return out[i].Cn < out[j].Cn
		}
		return out[i].A < out[j].A
	})
	return out
}

// ConstAnnots returns the annotations with which the constant cn is
// present in v (top level, fully matched flow only).
func (s *System) ConstAnnots(cn CNode, v VarID) []Annot {
	v = s.find(v)
	var out []Annot
	for _, f := range s.vars[v].reach.facts {
		if f.cn == cn {
			out = append(out, f.a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConstEntailed implements the simple entailment query of §3.2:
//
//	C ∧ f_ε ⊆ α ⊨ ⋁_{f ∈ F_accept} cn^α ⊆^f v
//
// which holds iff the constant reaches v with some accepting annotation.
func (s *System) ConstEntailed(cn CNode, v VarID) bool {
	for _, a := range s.ConstAnnots(cn, v) {
		if s.Alg.Accepting(a) {
			return true
		}
	}
	return false
}

// Flows reports whether constant cn reaches v at all (with any
// annotation, accepting or not) through fully matched flow. This is the
// matched label-flow query of §7.3.
func (s *System) Flows(cn CNode, v VarID) bool {
	v = s.find(v)
	for _, f := range s.vars[v].reach.facts {
		if f.cn == cn {
			return true
		}
	}
	return false
}

// --- PN reachability (§6.2) -------------------------------------------

// PNFact is one positive-negative reachability fact: the queried constant
// occurs (at any constructor depth) in variable V with total annotation A.
type PNFact struct {
	V VarID
	A Annot
}

type pnKey struct {
	v       VarID
	a       Annot
	wrapped bool // true once the fact is inside an unmatched constructor (phase P)
}

type pnParent struct {
	fromV VarID
	fromA Annot
	fromW bool
	via   CNode // constructor wrapped through; -1 otherwise
	pop   bool  // true for an unmatched projection (N) step
}

// PNResult holds the result of a PN-reachability query for one constant.
type PNResult struct {
	sys   *System
	cn    CNode
	facts map[pnKey]pnParent
	order []PNFact
	seen  map[PNFact]bool
	// byVar indexes annotations per variable, built lazily on first At.
	byVar map[VarID][]Annot
}

// PNReach computes positive-negative reachability (§6.2, and [15]) for
// the constant cn: every (variable, annotation) at which the constant
// occurs, allowing partially matched call/return paths of the shape
// N*-matched-P*. Three step kinds combine:
//
//   - fully matched flow comes from the solved reach tables (the
//     projection rule already derived those edges);
//   - unmatched "returns" (N steps) let a top-level fact cross a
//     projection constraint c^-i(X) ⊆^g Z, after which it keeps
//     propagating along ordinary edges; once a fact wraps it may not take
//     further N steps (the N*M*P* discipline);
//   - unmatched "calls" (P steps) are wrap steps through constructor
//     expressions whose argument holds the constant, enumerated through
//     the expression's solved occurrences.
//
// The system must be solved first.
func (s *System) PNReach(cn CNode) *PNResult {
	r := &PNResult{sys: s, cn: cn, facts: make(map[pnKey]pnParent), seen: make(map[PNFact]bool)}
	// Per-variable projection index over the raw constraints (the solver
	// may have rerouted its own copies through projection merging).
	projIdx := map[VarID][]rawConstraint{}
	for _, rc := range s.raw {
		if rc.kind == rawProj {
			x := s.find(rc.x)
			projIdx[x] = append(projIdx[x], rc)
		}
	}
	type item struct {
		v       VarID
		a       Annot
		wrapped bool
	}
	var work []item
	add := func(v VarID, a Annot, wrapped bool, p pnParent) {
		v = s.find(v)
		k := pnKey{v, a, wrapped}
		if _, dup := r.facts[k]; dup {
			return
		}
		r.facts[k] = p
		f := PNFact{v, a}
		if !r.seen[f] {
			r.seen[f] = true
			r.order = append(r.order, f)
		}
		work = append(work, item{v, a, wrapped})
	}
	// Seed: top-level occurrences of the constant (phase N).
	for _, oc := range s.cons[cn].occur {
		add(oc.v, oc.a, false, pnParent{fromV: -1, via: -1})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if !it.wrapped {
			// N-phase: ordinary edges and unmatched projections.
			for _, e := range s.vars[it.v].out {
				add(s.find(e.to), s.Alg.Then(it.a, e.a), false,
					pnParent{fromV: it.v, fromA: it.a, via: -1})
			}
			for _, rc := range projIdx[it.v] {
				add(s.find(rc.y), s.Alg.Then(it.a, rc.a), false,
					pnParent{fromV: it.v, fromA: it.a, via: -1, pop: true})
			}
		}
		// Wrap steps (either phase; result is phase P).
		for _, use := range s.vars[it.v].argOf {
			for _, oc := range s.cons[use.cn].occur {
				add(oc.v, s.Alg.Then(it.a, oc.a), true,
					pnParent{fromV: it.v, fromA: it.a, fromW: it.wrapped, via: use.cn})
			}
		}
	}
	return r
}

// At returns the annotations with which the constant occurs at v.
func (r *PNResult) At(v VarID) []Annot {
	if r.byVar == nil {
		r.byVar = make(map[VarID][]Annot)
		for _, f := range r.order {
			r.byVar[f.V] = append(r.byVar[f.V], f.A)
		}
		for _, as := range r.byVar {
			sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		}
	}
	return r.byVar[r.sys.find(v)]
}

// AcceptingAt reports whether the constant occurs at v with an accepting
// annotation — for the model checker, a property violation at v.
func (r *PNResult) AcceptingAt(v VarID) (Annot, bool) {
	for _, a := range r.At(v) {
		if r.sys.Alg.Accepting(a) {
			return a, true
		}
	}
	return 0, false
}

// Accepting returns all facts with accepting annotations, in discovery
// order.
func (r *PNResult) Accepting() []PNFact {
	var out []PNFact
	for _, f := range r.order {
		if r.sys.Alg.Accepting(f.A) {
			out = append(out, f)
		}
	}
	return out
}

// Facts returns every PN fact in discovery order.
func (r *PNResult) Facts() []PNFact { return r.order }

// Trace reconstructs a witness for the fact (v, a): the chain of
// variables the constant moved through, from a seed constraint to v.
// Wrap steps appear with Wrapped set to the constructor expression.
func (r *PNResult) Trace(v VarID, a Annot) []TraceStep {
	v = r.sys.find(v)
	var steps []TraceStep
	seen := map[pnKey]bool{}
	k, ok := r.lookup(v, a)
	if !ok {
		return nil
	}
	for {
		p, found := r.facts[k]
		if !found || seen[k] {
			break
		}
		seen[k] = true
		steps = append(steps, TraceStep{Var: k.v, Annot: k.a, Wrapped: p.via, Popped: p.pop})
		if p.fromV < 0 {
			// Seed: continue through the reach-level witness (whose
			// first step repeats the current fact).
			pre := r.sys.witness(k.v, r.cn, k.a, map[pnKey]bool{})
			if len(pre) > 1 {
				steps = append(steps, pre[1:]...)
			}
			break
		}
		k = pnKey{r.sys.find(p.fromV), p.fromA, p.fromW}
	}
	reverse(steps)
	return steps
}

// lookup finds the fact key for (v, a) in either phase, preferring the
// unwrapped one.
func (r *PNResult) lookup(v VarID, a Annot) (pnKey, bool) {
	if _, ok := r.facts[pnKey{v, a, false}]; ok {
		return pnKey{v, a, false}, true
	}
	if _, ok := r.facts[pnKey{v, a, true}]; ok {
		return pnKey{v, a, true}, true
	}
	return pnKey{}, false
}

// TraceStep is one hop of a witness path.
type TraceStep struct {
	Var   VarID
	Annot Annot
	// Wrapped is the constructor expression wrapped through on this hop,
	// or -1 for plain flow.
	Wrapped CNode
	// Popped marks an unmatched projection (N) step.
	Popped bool
}

func reverse(s []TraceStep) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Witness reconstructs the variable chain along which cn first reached v
// with annotation a (top-level flow). Returns nil if the fact is unknown
// or witness tracking is disabled.
func (s *System) Witness(v VarID, cn CNode, a Annot) []TraceStep {
	steps := s.witness(s.find(v), cn, a, map[pnKey]bool{})
	reverse(steps)
	return steps
}

func (s *System) witness(v VarID, cn CNode, a Annot, seen map[pnKey]bool) []TraceStep {
	var steps []TraceStep
	for {
		k := pnKey{v: v, a: a}
		if seen[k] {
			break
		}
		seen[k] = true
		p, ok := s.vars[v].reach.lookup(cn, a)
		if !ok {
			break
		}
		steps = append(steps, TraceStep{Var: v, Annot: a, Wrapped: -1})
		if p.step == stepSeed || p.fromVar < 0 {
			break
		}
		v, a = s.find(p.fromVar), p.annot
	}
	return steps
}

// --- Word-variable reconstruction and term enumeration ------------------

// RootAnnots reconstructs, at query time, the least solution of the
// representative-function constraints that eager resolution would have
// attached to constructor expressions (the f ∘ α ⊆ β of the structural
// rule, §3.1). The solver itself never materializes these variables (§3.2,
// §8); this pass replays the structural meets recorded in the reach tables
// to a fixed point.
//
// seeds lists the constructor expressions whose word variables are
// hypothesized to contain f_ε (the "f_ε ⊆ α" premises a query adds for the
// variables of the queried term). Expressions outside seeds contribute
// only their forced lower bounds.
func (s *System) RootAnnots(seeds []CNode) map[CNode]map[Annot]bool {
	res := make(map[CNode]map[Annot]bool)
	add := func(cn CNode, a Annot) bool {
		m := res[cn]
		if m == nil {
			m = make(map[Annot]bool)
			res[cn] = m
		}
		if m[a] {
			return false
		}
		m[a] = true
		return true
	}
	for _, cn := range seeds {
		add(cn, s.Alg.Identity())
	}
	for changed := true; changed; {
		changed = false
		for v := range s.vars {
			vd := &s.vars[VarID(v)]
			if vd.uf != VarID(v) || len(vd.sinks) == 0 {
				continue
			}
			for _, sk := range vd.sinks {
				for _, f := range vd.reach.facts {
					if s.cons[f.cn].cons != s.cons[sk.cn].cons {
						continue
					}
					h := s.Alg.Then(f.a, sk.a)
					for w := range res[f.cn] {
						if add(sk.cn, s.Alg.Then(w, h)) {
							changed = true
						}
					}
				}
			}
		}
	}
	return res
}

// LowerNodes returns every constructor expression that occurs on the
// left-hand side of a lower-bound constraint: the default f_ε seed set for
// term enumeration.
func (s *System) LowerNodes() []CNode {
	seen := make(map[CNode]bool)
	var out []CNode
	for _, rc := range s.raw {
		if rc.kind == rawLower && !seen[rc.cn] {
			seen[rc.cn] = true
			out = append(out, rc.cn)
		}
	}
	return out
}

// TermsIn enumerates the annotated ground terms in the least solution of
// v with every lower-bound expression's word variable seeded with f_ε, up
// to the given constructor depth and capped at limit terms (0 = no cap).
// See TermsInSeeded for the seed-controlled variant.
func (s *System) TermsIn(v VarID, bank *terms.Bank, maxDepth, limit int) []terms.TermID {
	return s.TermsInSeeded(v, bank, maxDepth, limit, s.LowerNodes())
}

// TermsInSeeded enumerates the terms of v's least solution under the
// query hypothesis f_ε ⊆ α for the word variables of the seed
// expressions. A term c^w(t1,…,tn) is in v when some reach fact
// (c(X1,…,Xn), f) holds at v with w = w0·f for a root annotation w0 of
// the expression, and ti = ui·f for ui in the least solution of Xi.
// The result is hash-consed: intersecting two variables' term sets is set
// intersection on TermIDs, which is how stack-aware alias queries (§7.5)
// are answered.
func (s *System) TermsInSeeded(v VarID, bank *terms.Bank, maxDepth, limit int, seeds []CNode) []terms.TermID {
	roots := s.RootAnnots(seeds)
	set := map[terms.TermID]bool{}
	s.termsIn(s.find(v), bank, maxDepth, limit, roots, set)
	out := make([]terms.TermID, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *System) termsIn(v VarID, bank *terms.Bank, depth, limit int,
	roots map[CNode]map[Annot]bool, acc map[terms.TermID]bool) {
	if depth <= 0 {
		return
	}
	fa, isFunc := s.Alg.(FuncAlgebra)
	for _, rf := range s.vars[v].reach.facts {
		k := reachKey{rf.cn, rf.a}
		if limit > 0 && len(acc) >= limit {
			return
		}
		cd := s.cons[k.cn]
		// Argument term sets, each extended by this fact's path
		// annotation (the ·w operation applies at every level).
		argSets := make([][]terms.TermID, len(cd.args))
		feasible := true
		for i, av := range cd.args {
			sub := map[terms.TermID]bool{}
			s.termsIn(s.find(av), bank, depth-1, limit, roots, sub)
			if len(sub) == 0 {
				feasible = false
				break
			}
			for t := range sub {
				if isFunc {
					t = bank.Append(t, toFuncID(k.a), fa.Mon)
				}
				argSets[i] = append(argSets[i], t)
			}
			sort.Slice(argSets[i], func(x, y int) bool { return argSets[i][x] < argSets[i][y] })
		}
		if !feasible {
			continue
		}
		for w := range roots[k.cn] {
			root := s.Alg.Then(w, k.a)
			if !isFunc {
				root = 0
			}
			combine(bank, cd.cons, toFuncID(root), argSets, nil, acc, limit)
		}
	}
}

// EntailedTermIn reports the general entailment query of §3.2 for a
// ground term: whether t (interned in bank over the same signature and
// monoid) is in every solution of v, under f_ε seeds for the given
// expressions. maxDepth bounds the search to t's own depth.
func (s *System) EntailedTermIn(t terms.TermID, v VarID, bank *terms.Bank, seeds []CNode) bool {
	depth := bank.Depth(t)
	for _, got := range s.TermsInSeeded(v, bank, depth, 0, seeds) {
		if got == t {
			return true
		}
	}
	return false
}

func toFuncID(a Annot) monoid.FuncID { return monoid.FuncID(a) }

func combine(bank *terms.Bank, c terms.ConsID, annot monoid.FuncID, argSets [][]terms.TermID,
	picked []terms.TermID, acc map[terms.TermID]bool, limit int) {
	if limit > 0 && len(acc) >= limit {
		return
	}
	if len(picked) == len(argSets) {
		acc[bank.MustMk(c, annot, picked...)] = true
		return
	}
	for _, t := range argSets[len(picked)] {
		combine(bank, c, annot, argSets, append(picked, t), acc, limit)
	}
}

// HeadAnnots implements the general form of the §3.2 query: the
// annotations with which any constructor expression headed by c flows
// into v (used e.g. to search for terms denoting errors when checking
// finite state properties). Constants are the special case where the
// expression is unique.
func (s *System) HeadAnnots(c terms.ConsID, v VarID) []Annot {
	v = s.find(v)
	set := map[Annot]bool{}
	for _, f := range s.vars[v].reach.facts {
		if s.cons[f.cn].cons == c {
			set[f.a] = true
		}
	}
	out := make([]Annot, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeadEntailed reports whether some c-headed expression is in v with an
// accepting annotation.
func (s *System) HeadEntailed(c terms.ConsID, v VarID) bool {
	for _, a := range s.HeadAnnots(c, v) {
		if s.Alg.Accepting(a) {
			return true
		}
	}
	return false
}

// DOT renders the solved constraint graph in Graphviz dot format:
// variables as ellipses (merged representatives folded together),
// constructor expressions as boxes, annotated edges labelled with their
// annotation. Intended for small systems; large graphs are unreadable.
func (s *System) DOT(name string) string {
	var b strings.Builder
	if name == "" {
		name = "constraints"
	}
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	ident := s.Alg.Identity()
	lbl := func(a Annot) string {
		if a == ident {
			return ""
		}
		return s.Alg.String(a)
	}
	for v := range s.vars {
		if s.find(VarID(v)) != VarID(v) {
			continue
		}
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v, s.VarName(VarID(v)))
		for _, e := range s.vars[v].out {
			fmt.Fprintf(&b, "  v%d -> v%d [label=%q];\n", v, int(s.find(e.to)), lbl(e.a))
		}
		for _, sk := range s.vars[v].sinks {
			fmt.Fprintf(&b, "  v%d -> c%d [label=%q, style=dashed];\n", v, int(sk.cn), lbl(sk.a))
		}
		for _, pr := range s.vars[v].projs {
			fmt.Fprintf(&b, "  v%d -> v%d [label=\"%s^-%d %s\", style=dotted];\n",
				v, int(s.find(pr.to)), s.Sig.Name(pr.cons), pr.idx+1, lbl(pr.a))
		}
	}
	for cn := range s.cons {
		fmt.Fprintf(&b, "  c%d [label=%q, shape=box];\n", cn, s.ConsString(CNode(cn)))
		for _, arg := range s.cons[cn].args {
			fmt.Fprintf(&b, "  v%d -> c%d [style=dashed, arrowhead=none];\n", int(s.find(arg)), cn)
		}
	}
	// Seed constraints (lower bounds).
	for _, rc := range s.raw {
		if rc.kind == rawLower {
			fmt.Fprintf(&b, "  c%d -> v%d [label=%q];\n", int(rc.cn), int(s.find(rc.y)), lbl(rc.a))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
