package core

import "maps"

// clip caps a slice at its length so that appending through the returned
// header always reallocates instead of writing into backing storage that
// a forked base still shares.
func clip[T any](s []T) []T { return s[:len(s):len(s)] }

// Fork returns an independent System layered on a frozen snapshot of s:
// the fork sees every variable, constructor expression, edge, derived
// fact and clash of s, can be extended and solved on its own, and never
// writes back into s. Large per-variable arrays are shared copy-on-write
// (appends reallocate, the reach index is copied on first insert) and
// the dedup tables are shared through read-only base layers, so forking
// costs one pass over the variable headers rather than a rebuild of the
// derivation.
//
// Contract: the receiver must be quiescent — Solve has drained its work
// queue — and must not be mutated (or queried through PNReach, whose
// union-find accesses compress paths) after the first Fork. Concurrent
// Forks of the same frozen base are safe. alg replaces the annotation
// algebra and must agree with s's algebra on every annotation occurring
// in s; the intended use builds the base with identity annotations only,
// which every Algebra represents as 0, then layers property-specific
// annotated constraints on each fork.
func (s *System) Fork(alg Algebra) *System {
	if len(s.work) > 0 {
		panic("core: Fork of an unsolved System (call Solve first)")
	}
	f := &System{
		Alg:           alg,
		Sig:           s.Sig,
		opts:          s.opts,
		nameFn:        s.nameFn,
		freshPrefixes: clip(s.freshPrefixes),
		prefixIndex:   maps.Clone(s.prefixIndex),
		varIndex:      s.varIndex.fork(),
		consIndex:     s.consIndex.fork(),
		edgeSeen:      s.edgeSeen.fork(),
		sinkSeen:      s.sinkSeen.fork(),
		projSeen:      s.projSeen.fork(),
		clashSeen:     s.clashSeen.fork(),
		clashes:       clip(s.clashes),
		raw:           clip(s.raw),
		work:          make([]workItem, 0, 64),
		nEdges:        s.nEdges,
		nReach:        s.nReach,
		nCollapsed:    s.nCollapsed,
		metrics:       s.metrics,
	}
	f.vars = make([]varData, len(s.vars))
	copy(f.vars, s.vars)
	for i := range f.vars {
		vd := &f.vars[i]
		vd.out = clip(vd.out)
		vd.sinks = clip(vd.sinks)
		vd.projs = clip(vd.projs)
		vd.argOf = clip(vd.argOf)
		vd.reach.facts = clip(vd.reach.facts)
		vd.reach.shared = true
		if vd.projMerge != nil {
			vd.projMerge = maps.Clone(vd.projMerge)
		}
	}
	f.cons = make([]consData, len(s.cons))
	copy(f.cons, s.cons)
	for i := range f.cons {
		// args are immutable after interning and stay shared.
		f.cons[i].occur = clip(f.cons[i].occur)
	}
	return f
}

// Freeze normalizes the union-find so that later read-only operations
// (VarName, Rep on a compressed path, Fork's header copies) perform no
// writes, making a solved System safe to Fork from multiple goroutines.
//
// Contract: Freeze is idempotent — after one call every union-find
// parent is a root, so further calls (and every find on any path) read
// without writing. It is therefore safe to call again on an
// already-frozen System, even concurrently with Forks of it; the
// snapshot encoder relies on this to re-normalize defensively. Freeze
// does not imply quiescence: it is the caller's job not to add
// constraints afterwards (Fork's contract), and a post-Freeze mutation
// simply requires another Freeze before the next Fork.
func (s *System) Freeze() {
	for v := range s.vars {
		s.find(VarID(v))
	}
}
