package core_test

import (
	"testing"

	"rasc/internal/core"
	"rasc/internal/corebench"
)

// BenchmarkSolver runs the shared solver-only scenarios (see
// internal/corebench) under the default options; cmd/benchgen -core-json
// renders the same suite into BENCH_core.json.
func BenchmarkSolver(b *testing.B) {
	for _, sc := range corebench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			op := sc.Setup(core.Options{})
			var st core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = op()
			}
			b.ReportMetric(float64(st.Reach), "reach/op")
			b.ReportMetric(float64(st.Edges), "edges/op")
		})
	}
}

// BenchmarkSolverNoOpt measures the same scenarios with every solver
// optimization disabled, for before/after comparisons of the
// optimizations themselves.
func BenchmarkSolverNoOpt(b *testing.B) {
	opts := core.Options{NoCycleElim: true, NoProjMerge: true, NoHashCons: true}
	for _, sc := range corebench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			op := sc.Setup(opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}
