package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a metrics
// snapshot, plus the matching validator obslint and CI use to check a
// scraped endpoint. Zero-dependency on purpose: the format is a few
// line shapes, and generating + validating it ourselves keeps the
// whole telemetry chain inside the repo.

// PrometheusContentType is the Content-Type an exposition response
// carries.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name (dotted) to a legal Prometheus
// metric name: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit is prefixed.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the text exposition format:
// every counter and gauge as a single sample with a # TYPE header, and
// every histogram as the conventional cumulative _bucket series (le
// labels, final +Inf) plus _sum and _count. Families are sorted by
// exposition name so repeated exports of identical state are
// byte-identical.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	bw := bufio.NewWriter(w)
	type family struct {
		kind string
		emit func() // writes the samples
	}
	fams := map[string]family{}
	for name, v := range snap.Counters {
		n, v := promName(name), v
		fams[n] = family{kind: "counter", emit: func() {
			fmt.Fprintf(bw, "%s %d\n", n, v)
		}}
	}
	for name, v := range snap.Gauges {
		n, v := promName(name), v
		fams[n] = family{kind: "gauge", emit: func() {
			fmt.Fprintf(bw, "%s %d\n", n, v)
		}}
	}
	for name, h := range snap.Histograms {
		n, h := promName(name), h
		fams[n] = family{kind: "histogram", emit: func() {
			var cum int64
			for _, b := range h.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.LE != nil {
					le = strconv.FormatInt(*b.LE, 10)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum %d\n", n, h.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
		}}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.kind)
		f.emit()
	}
	return bw.Flush()
}

// ValidatePrometheus checks that data is a well-formed text exposition
// as WritePrometheus emits it (and as Prometheus itself would accept):
// every sample belongs to a family declared by a preceding # TYPE line,
// sample values parse, and each histogram family has ascending le
// bounds with non-decreasing cumulative bucket counts, a final +Inf
// bucket, and a _count equal to the +Inf cumulative count.
func ValidatePrometheus(data []byte) error {
	type histState struct {
		lastLE   float64
		lastCum  int64
		buckets  int
		infCum   int64
		sawInf   bool
		sawSum   bool
		count    int64
		sawCount bool
	}
	types := map[string]string{}
	hists := map[string]*histState{}

	lineNo := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("obs: prometheus: line %d: malformed TYPE line", lineNo)
				}
				name, kind := fields[2], fields[3]
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("obs: prometheus: line %d: unknown type %q", lineNo, kind)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("obs: prometheus: line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = kind
				if kind == "histogram" {
					hists[name] = &histState{}
				}
			}
			// HELP and other comments pass through.
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("obs: prometheus: line %d: %v", lineNo, err)
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if _, ok := hists[strings.TrimSuffix(name, s)]; ok {
					base, suffix = strings.TrimSuffix(name, s), s
				}
			}
		}
		kind, declared := types[base]
		if !declared {
			return fmt.Errorf("obs: prometheus: line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if kind != "histogram" {
			continue
		}
		h := hists[base]
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("obs: prometheus: line %d: %s lacks an le label", lineNo, name)
			}
			cum := int64(value)
			if cum < h.lastCum {
				return fmt.Errorf("obs: prometheus: line %d: %s cumulative counts decrease", lineNo, base)
			}
			if le == "+Inf" {
				if h.sawInf {
					return fmt.Errorf("obs: prometheus: line %d: %s has two +Inf buckets", lineNo, base)
				}
				h.sawInf, h.infCum = true, cum
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("obs: prometheus: line %d: bad le %q", lineNo, le)
				}
				if h.sawInf {
					return fmt.Errorf("obs: prometheus: line %d: %s bucket after +Inf", lineNo, base)
				}
				if h.buckets > 0 && bound <= h.lastLE {
					return fmt.Errorf("obs: prometheus: line %d: %s le bounds not ascending", lineNo, base)
				}
				h.lastLE = bound
			}
			h.lastCum = cum
			h.buckets++
		case "_sum":
			h.sawSum = true
		case "_count":
			h.sawCount, h.count = true, int64(value)
		default:
			return fmt.Errorf("obs: prometheus: line %d: unexpected histogram sample %s", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: prometheus: %v", err)
	}
	for name, h := range hists {
		switch {
		case !h.sawInf:
			return fmt.Errorf("obs: prometheus: histogram %s lacks a +Inf bucket", name)
		case !h.sawSum || !h.sawCount:
			return fmt.Errorf("obs: prometheus: histogram %s lacks _sum or _count", name)
		case h.infCum != h.count:
			return fmt.Errorf("obs: prometheus: histogram %s +Inf bucket %d != count %d", name, h.infCum, h.count)
		}
	}
	return nil
}

// parsePromSample splits one sample line into name, labels and value.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels = map[string]string{}
		for _, pair := range splitLabels(rest[i+1 : j]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			uq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("unquotable label value %q", v)
			}
			labels[k] = uq
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && inQ && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQ = !inQ
			cur.WriteByte(c)
		case c == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
