package obs

// ServerMetrics is fed by the resident analysis engine and the gocheckd
// daemon serving it: request throughput, failures, resident-state
// accounting and the request-latency distribution that p50/p99 headline
// numbers are read from.
type ServerMetrics struct {
	// Requests counts engine check requests started (one per client
	// check/explain call); Errors counts the subset that failed.
	Requests *Counter
	Errors   *Counter
	// Evictions counts resident programs evicted under the memory
	// budget; ResidentPrograms is the current resident-program count.
	Evictions        *Counter
	ResidentPrograms *Gauge
	// MemoHits and MemoMisses count in-memory job-result memo lookups
	// (the engine-level layer above the on-disk cache.* counters).
	MemoHits   *Counter
	MemoMisses *Counter
	// RequestMs is the end-to-end engine request latency distribution in
	// milliseconds (delta apply + re-lower + analyze); RelowerMs is the
	// distribution of the re-lowering step alone on requests that
	// carried a file delta.
	RequestMs *Histogram
	RelowerMs *Histogram
}

// NewServerMetrics interns the server bundle in r.
func NewServerMetrics(r *Registry) *ServerMetrics {
	return &ServerMetrics{
		Requests:         r.Counter("server.requests"),
		Errors:           r.Counter("server.errors"),
		Evictions:        r.Counter("server.evictions"),
		ResidentPrograms: r.Gauge("server.resident_programs"),
		MemoHits:         r.Counter("server.memo_hits"),
		MemoMisses:       r.Counter("server.memo_misses"),
		RequestMs:        r.Histogram("server.request_ms", DefaultLatencyBounds),
		RelowerMs:        r.Histogram("server.relower_ms", DefaultLatencyBounds),
	}
}
