package obs

import (
	"sync"
	"time"
)

// Sliding-window request aggregation: a ring of per-second buckets so
// the server can answer "what were the request rate, error rate and
// latency quantiles over the last minute / five minutes" from live
// traffic without retaining individual samples. All methods take the
// observation time explicitly, so tests drive the clock.

// windowSeconds is the ring capacity — enough for a 5-minute window.
const windowSeconds = 300

// windowBucket aggregates one wall-clock second of requests.
type windowBucket struct {
	sec    int64 // unix second this bucket currently describes
	count  int64
	errors int64
	// byBound[i] counts requests with latency <= bounds[i]; the last
	// slot is the overflow bucket, mirroring Histogram.
	byBound []int64
}

// Window accumulates per-second request aggregates over the last
// windowSeconds seconds. A nil *Window is a no-op / zero on every
// method.
type Window struct {
	mu      sync.Mutex
	bounds  []int64 // ascending latency bounds, milliseconds
	buckets [windowSeconds]windowBucket
}

// NewWindow builds a window using bounds (milliseconds, ascending) for
// latency quantiles; nil means DefaultLatencyBounds.
func NewWindow(bounds []int64) *Window {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	w := &Window{bounds: append([]int64(nil), bounds...)}
	for i := range w.buckets {
		w.buckets[i].byBound = make([]int64, len(w.bounds)+1)
	}
	return w
}

// bucketFor returns the ring bucket for sec, resetting it if it still
// describes an older second. Caller holds w.mu.
func (w *Window) bucketFor(sec int64) *windowBucket {
	b := &w.buckets[sec%windowSeconds]
	if b.sec != sec {
		b.sec = sec
		b.count, b.errors = 0, 0
		for i := range b.byBound {
			b.byBound[i] = 0
		}
	}
	return b
}

// Observe records one request finishing at t with the given latency.
// Nil-safe.
func (w *Window) Observe(t time.Time, durMS int64, isErr bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.bucketFor(t.Unix())
	b.count++
	if isErr {
		b.errors++
	}
	i := 0
	for i < len(w.bounds) && durMS > w.bounds[i] {
		i++
	}
	b.byBound[i]++
}

// WindowStats summarizes one span of recent traffic.
type WindowStats struct {
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	RatePerSec float64 `json:"rate_per_sec"`
	ErrorRate  float64 `json:"error_rate"`
	P50MS      int64   `json:"p50_ms"`
	P99MS      int64   `json:"p99_ms"`
}

// Stats aggregates the span seconds ending at t (exclusive of seconds
// older than the span, inclusive of t's own second). Quantiles report
// the smallest configured latency bound covering the quantile, or the
// largest bound + 1 for overflow — the same convention as
// Histogram.Quantile. Nil-safe (zero).
func (w *Window) Stats(t time.Time, span time.Duration) WindowStats {
	if w == nil {
		return WindowStats{}
	}
	secs := int64(span / time.Second)
	if secs <= 0 {
		secs = 1
	}
	if secs > windowSeconds {
		secs = windowSeconds
	}
	now := t.Unix()
	var st WindowStats
	merged := make([]int64, len(w.bounds)+1)
	w.mu.Lock()
	for s := now - secs + 1; s <= now; s++ {
		b := &w.buckets[s%windowSeconds]
		if b.sec != s {
			continue // bucket is stale or from a different second
		}
		st.Requests += b.count
		st.Errors += b.errors
		for i, c := range b.byBound {
			merged[i] += c
		}
	}
	w.mu.Unlock()
	st.RatePerSec = float64(st.Requests) / float64(secs)
	if st.Requests > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Requests)
		st.P50MS = quantileFromBuckets(w.bounds, merged, st.Requests, 0.50)
		st.P99MS = quantileFromBuckets(w.bounds, merged, st.Requests, 0.99)
	}
	return st
}

// quantileFromBuckets resolves quantile q against cumulative-by-merge
// bucket counts.
func quantileFromBuckets(bounds, counts []int64, total int64, q float64) int64 {
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] + 1
		}
	}
	return bounds[len(bounds)-1] + 1
}
