package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// NewTraceID returns a fresh 16-hex-char request trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a constant
		// fallback keeps tracing non-fatal here.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// FlightConfig sizes a Flight recorder. Zero fields take defaults.
type FlightConfig struct {
	// Recent is the ring capacity: the most recent Recent requests are
	// always retained (default 64).
	Recent int
	// Slowest is how many of the slowest-ever requests are retained
	// beyond the ring (default 8). A slow request stays inspectable
	// long after the ring has wrapped past it.
	Slowest int
	// SlowUS is the slow-request threshold in microseconds: a request at
	// or above it is persisted to Dir as Chrome trace JSON the moment it
	// is recorded. 0 disables persistence.
	SlowUS int64
	// Dir receives persisted slow traces (flight-<traceid>.json).
	// Empty disables persistence.
	Dir string
	// Metrics, when non-nil, interns the flight.* counters (recorded,
	// persisted, persist_errors) so the recorder shows up in metric
	// snapshots and Prometheus exposition.
	Metrics *Registry
}

// FlightEntry is one recorded request: identity, outcome and the
// request's span records. Entries are immutable once recorded.
type FlightEntry struct {
	Seq        uint64 `json:"seq"`
	TraceID    string `json:"trace_id"`
	Program    string `json:"program"`
	DurUS      int64  `json:"dur_us"`
	Err        string `json:"error,omitempty"`
	MemoHits   int64  `json:"memo_hits"`
	MemoMisses int64  `json:"memo_misses"`
	Persisted  bool   `json:"persisted"`

	events []traceEvent
}

// FlightMeta is the caller-supplied identity and outcome of one
// request being recorded.
type FlightMeta struct {
	TraceID    string
	Program    string
	Err        string
	DurUS      int64
	MemoHits   int64
	MemoMisses int64
}

// Flight is the always-on bounded flight recorder: a ring of the most
// recent requests plus a separate retention set of the slowest ever
// seen, each entry carrying the request's full span tree. Recording is
// lock-cheap — one short critical section per request, not per span
// (spans accumulate in the request's own Tracer) — so the recorder can
// stay on under full traffic. A nil *Flight is a no-op on every
// method.
type Flight struct {
	cfg FlightConfig

	recordedC *Counter
	persistC  *Counter
	persistE  *Counter

	mu      sync.Mutex
	seq     uint64
	ring    []*FlightEntry // circular, len == cfg.Recent once warm
	next    int            // ring index the next entry lands on
	slowest []*FlightEntry // ascending by DurUS, len <= cfg.Slowest
}

// NewFlight builds a recorder. Persistence is active only when both
// SlowUS > 0 and Dir is non-empty.
func NewFlight(cfg FlightConfig) *Flight {
	if cfg.Recent <= 0 {
		cfg.Recent = 64
	}
	if cfg.Slowest < 0 {
		cfg.Slowest = 0
	} else if cfg.Slowest == 0 {
		cfg.Slowest = 8
	}
	f := &Flight{cfg: cfg}
	if cfg.Metrics != nil {
		f.recordedC = cfg.Metrics.Counter("flight.recorded")
		f.persistC = cfg.Metrics.Counter("flight.persisted")
		f.persistE = cfg.Metrics.Counter("flight.persist_errors")
	}
	return f
}

// Record commits one finished request: its metadata plus the span
// events accumulated in tr (nil OK: the entry records with no spans).
// When the request breached the slow threshold, its trace is also
// persisted to the configured directory before Record returns, so the
// evidence survives a crash or restart that follows the slow request.
func (f *Flight) Record(meta FlightMeta, tr *Tracer) {
	if f == nil {
		return
	}
	e := &FlightEntry{
		TraceID:    meta.TraceID,
		Program:    meta.Program,
		DurUS:      meta.DurUS,
		Err:        meta.Err,
		MemoHits:   meta.MemoHits,
		MemoMisses: meta.MemoMisses,
	}
	if tr != nil {
		tr.mu.Lock()
		e.events = append([]traceEvent(nil), tr.events...)
		tr.mu.Unlock()
	}
	persist := f.cfg.SlowUS > 0 && f.cfg.Dir != "" && meta.DurUS >= f.cfg.SlowUS

	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	if len(f.ring) < f.cfg.Recent {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.next] = e
	}
	f.next = (f.next + 1) % f.cfg.Recent
	if f.cfg.Slowest > 0 {
		i := sort.Search(len(f.slowest), func(i int) bool { return f.slowest[i].DurUS >= e.DurUS })
		if len(f.slowest) < f.cfg.Slowest {
			f.slowest = append(f.slowest, nil)
			copy(f.slowest[i+1:], f.slowest[i:])
			f.slowest[i] = e
		} else if i > 0 {
			// Evict the current fastest of the retained-slowest set.
			copy(f.slowest[0:], f.slowest[1:i])
			f.slowest[i-1] = e
		}
	}
	f.mu.Unlock()
	f.recordedC.Inc()

	if persist {
		err := f.persist(e)
		if err != nil {
			f.persistE.Inc()
		} else {
			f.persistC.Inc()
		}
		// Entry fields are read only under f.mu (readers copy), so the
		// outcome can be recorded after the write without racing.
		f.mu.Lock()
		e.Persisted = err == nil
		f.mu.Unlock()
	}
}

// persist writes one entry's Chrome trace atomically (temp + rename).
func (f *Flight) persist(e *FlightEntry) error {
	name := filepath.Join(f.cfg.Dir, "flight-"+sanitizeID(e.TraceID)+".json")
	tmp, err := os.CreateTemp(f.cfg.Dir, ".flight-*.tmp")
	if err != nil {
		return err
	}
	if err := writeChrome(tmp, []*FlightEntry{e}); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), name)
}

// sanitizeID keeps persisted filenames shell- and path-safe whatever a
// client put in the trace-ID field.
func sanitizeID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && i < 64; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '.')
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}

// retained returns every retained entry — the recent ring oldest-first,
// then any slowest-set entries the ring no longer holds — under the
// lock.
func (f *Flight) retained() []*FlightEntry {
	var out []*FlightEntry
	seen := map[uint64]bool{}
	n := len(f.ring)
	for i := 0; i < n; i++ {
		e := f.ring[(f.next+i)%n]
		out = append(out, e)
		seen[e.Seq] = true
	}
	for _, e := range f.slowest {
		if !seen[e.Seq] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Entries snapshots the retained entries' metadata, ordered by
// recording sequence (oldest first). Nil-safe (empty).
func (f *Flight) Entries() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, len(f.ring)+len(f.slowest))
	for _, e := range f.retained() {
		c := *e
		c.events = nil
		out = append(out, c)
	}
	return out
}

// Lookup finds a retained entry by trace ID (the most recent when IDs
// collide). Nil-safe.
func (f *Flight) Lookup(traceID string) (FlightEntry, bool) {
	if f == nil {
		return FlightEntry{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var found *FlightEntry
	for _, e := range f.retained() {
		if e.TraceID == traceID {
			found = e
		}
	}
	if found == nil {
		return FlightEntry{}, false
	}
	c := *found
	c.events = nil
	return c, true
}

// WriteChrome dumps retained traces as one Chrome trace-event JSON
// file: every retained request when traceID is empty (each request on
// its own pid so viewers render them as separate processes), or just
// the named request. Returns an error when the named trace is not
// retained. Nil-safe (an empty trace).
func (f *Flight) WriteChrome(w io.Writer, traceID string) error {
	var entries []*FlightEntry
	if f != nil {
		f.mu.Lock()
		for _, e := range f.retained() {
			if traceID == "" || e.TraceID == traceID {
				entries = append(entries, e)
			}
		}
		f.mu.Unlock()
	}
	if traceID != "" && len(entries) == 0 {
		return fmt.Errorf("obs: flight: no retained trace %q", traceID)
	}
	return writeChrome(w, entries)
}

// writeChrome renders entries as one trace file; entry i's events land
// on pid i+1. Events inside an entry keep their request-relative
// timestamps, so each request reads as its own timeline from zero.
func writeChrome(w io.Writer, entries []*FlightEntry) error {
	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for i, e := range entries {
		for _, ev := range e.events {
			ev.PID = i + 1
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.TID < b.TID
	})
	return writeTraceFile(w, out)
}

// FlightStats is the recorder's point-in-time accounting.
type FlightStats struct {
	Recorded  uint64 `json:"recorded"`
	Retained  int    `json:"retained"`
	Slowest   int    `json:"slowest"`
	SlowestUS int64  `json:"slowest_us"`
}

// Stats snapshots the recorder. Nil-safe (zero).
func (f *Flight) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FlightStats{Recorded: f.seq, Retained: len(f.retained()), Slowest: len(f.slowest)}
	if len(f.slowest) > 0 {
		st.SlowestUS = f.slowest[len(f.slowest)-1].DurUS
	}
	return st
}
