package obs

// Hook bundles: each groups the instruments one subsystem feeds, so the
// subsystem gates all of its instrumentation on a single pointer test.
// The bundles are built from a Registry (NewSolverMetrics and friends)
// and hold interned instruments; constructing the same bundle from the
// same registry twice returns instruments that share state.

// SolverMetrics is fed by internal/core's bidirectional solver.
type SolverMetrics struct {
	// WorklistPushes counts work items scheduled (addReach insertions
	// that enqueued rule application).
	WorklistPushes *Counter
	// WorklistHigh is the work queue's high-water mark.
	WorklistHigh *Gauge
	// EdgesAdded counts transitive-edge insertions that survived dedup.
	EdgesAdded *Counter
	// CycleElims counts variables eliminated by online cycle collapsing
	// (union operations).
	CycleElims *Counter
	// ReachInserts counts distinct derived (source, annotation) facts.
	ReachInserts *Counter
	// Compositions counts annotation compositions (monoid/substitution
	// composition-table hits) performed on the solver's hot paths.
	Compositions *Counter
	// Clashes counts manifest inconsistencies recorded.
	Clashes *Counter
	// ReachSetSize is the distribution of per-variable reach-set sizes,
	// sampled once per solved system (System.FlushSizeMetrics).
	ReachSetSize *Histogram
}

// NewSolverMetrics interns the solver bundle in r. Nil-safe: a nil
// registry yields a bundle of nil (no-op) instruments — callers should
// instead pass a nil *SolverMetrics to keep the disabled path on the
// single-branch fast path.
func NewSolverMetrics(r *Registry) *SolverMetrics {
	return &SolverMetrics{
		WorklistPushes: r.Counter("solver.worklist_pushes"),
		WorklistHigh:   r.Gauge("solver.worklist_high_water"),
		EdgesAdded:     r.Counter("solver.edges_added"),
		CycleElims:     r.Counter("solver.cycle_eliminations"),
		ReachInserts:   r.Counter("solver.reach_inserts"),
		Compositions:   r.Counter("solver.compositions"),
		Clashes:        r.Counter("solver.clashes"),
		ReachSetSize:   r.Histogram("solver.reach_set_size", DefaultSizeBounds),
	}
}

// PDMMetrics is fed by internal/pdm's two-phase skeleton layer.
type PDMMetrics struct {
	// SkeletonBuilds counts property-independent skeleton builds.
	SkeletonBuilds *Counter
	// SkeletonForks counts copy-on-write forks layered on a skeleton
	// (one per property × entry check).
	SkeletonForks *Counter
	// LayeredEvents counts property-event edges added by forks (the
	// annotation layers of the per-property phase).
	LayeredEvents *Counter
	// PrunedEvents counts matched events layered as identity edges
	// because their label can never reach an accept state (per-label
	// viability pruning of parametric properties).
	PrunedEvents *Counter
	// DeferredStmts counts statements whose classification was deferred
	// to the per-property phase, summed over built skeletons.
	DeferredStmts *Counter
}

// NewPDMMetrics interns the skeleton-layer bundle in r.
func NewPDMMetrics(r *Registry) *PDMMetrics {
	return &PDMMetrics{
		SkeletonBuilds: r.Counter("pdm.skeleton_builds"),
		SkeletonForks:  r.Counter("pdm.skeleton_forks"),
		LayeredEvents:  r.Counter("pdm.layered_events"),
		PrunedEvents:   r.Counter("pdm.pruned_events"),
		DeferredStmts:  r.Counter("pdm.deferred_stmts"),
	}
}

// SpecMetrics is fed by the analysis driver once per run from the
// compiled counting (bounded-counter) properties of the selected
// checkers; regular properties contribute nothing.
type SpecMetrics struct {
	// CountingCheckers counts selected checkers with a counting property.
	CountingCheckers *Counter
	// CounterMonoidSize is the largest |F_M^≡| among counting properties.
	CounterMonoidSize *Gauge
	// CounterStates is the largest counter-expanded machine (state count)
	// among counting properties.
	CounterStates *Gauge
	// SaturatingEdges sums the tracker transitions that clamp an exact
	// counter value into its saturated ≥k state — the points where the
	// bounded abstraction loses information.
	SaturatingEdges *Counter
	// Relations counts the declared counter-pair relations across
	// selected counting properties.
	Relations *Counter
	// RelationStates is the largest per-property relation-tracker state
	// total among the selected properties.
	RelationStates *Gauge
	// RelationSaturations sums the relation-tracker transitions that
	// leave the declared band for a sticky out-of-band state.
	RelationSaturations *Counter
}

// NewSpecMetrics interns the counting-spec bundle in r.
func NewSpecMetrics(r *Registry) *SpecMetrics {
	return &SpecMetrics{
		CountingCheckers:    r.Counter("spec.counting_checkers"),
		CounterMonoidSize:   r.Gauge("spec.counter_monoid_size"),
		CounterStates:       r.Gauge("spec.counter_states"),
		SaturatingEdges:     r.Counter("spec.counter_saturating_edges"),
		Relations:           r.Counter("spec.relations"),
		RelationStates:      r.Gauge("spec.relation_states"),
		RelationSaturations: r.Counter("spec.relation_saturations"),
	}
}

// CacheMetrics is fed by the analysis driver's incremental result
// cache.
type CacheMetrics struct {
	// Hits and Misses count content-key lookups.
	Hits   *Counter
	Misses *Counter
	// Corrupt counts records discarded by a decode or integrity-check
	// failure; VersionSkew counts records skipped for a format-version
	// mismatch. Both also count as Misses.
	Corrupt     *Counter
	VersionSkew *Counter
	// Stores counts records written.
	Stores *Counter
}

// NewCacheMetrics interns the cache bundle in r.
func NewCacheMetrics(r *Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits:        r.Counter("cache.hits"),
		Misses:      r.Counter("cache.misses"),
		Corrupt:     r.Counter("cache.corrupt"),
		VersionSkew: r.Counter("cache.version_skew"),
		Stores:      r.Counter("cache.stores"),
	}
}

// SnapshotMetrics is fed by the analysis driver's skeleton snapshot
// cache (frozen solved constraint graphs serialized for instant cold
// starts).
type SnapshotMetrics struct {
	// Hits counts skeletons reconstructed from a snapshot; Misses counts
	// lookups that fell back to a live build (absent, corrupt or skewed
	// snapshot). These are separate from cache.hits/cache.misses, which
	// count result-record lookups.
	Hits   *Counter
	Misses *Counter
	// Corrupt counts snapshots discarded by integrity or structural
	// validation; VersionSkew counts snapshots skipped for a container
	// format-version mismatch. Both also count as Misses.
	Corrupt     *Counter
	VersionSkew *Counter
	// Stores counts snapshots written; Bytes sums the snapshot sizes
	// moved in either direction (encoded on store, decoded on hit).
	Stores *Counter
	Bytes  *Counter
	// EncodeMs and DecodeMs are the per-snapshot encode/decode wall-time
	// distributions in milliseconds.
	EncodeMs *Histogram
	DecodeMs *Histogram
}

// NewSnapshotMetrics interns the skeleton-snapshot bundle in r.
func NewSnapshotMetrics(r *Registry) *SnapshotMetrics {
	return &SnapshotMetrics{
		Hits:        r.Counter("snapshot.hits"),
		Misses:      r.Counter("snapshot.misses"),
		Corrupt:     r.Counter("snapshot.corrupt"),
		VersionSkew: r.Counter("snapshot.version_skew"),
		Stores:      r.Counter("snapshot.stores"),
		Bytes:       r.Counter("snapshot.bytes"),
		EncodeMs:    r.Histogram("snapshot.encode_ms", DefaultSizeBounds),
		DecodeMs:    r.Histogram("snapshot.decode_ms", DefaultSizeBounds),
	}
}

// DriverMetrics is fed by the analysis driver itself.
type DriverMetrics struct {
	// Jobs counts (checker × entry) jobs executed (cached or solved);
	// JobsSolved counts the subset that ran a solver or model query.
	Jobs       *Counter
	JobsSolved *Counter
	// Diagnostics counts post-merge, post-suppression findings.
	Diagnostics *Counter
}

// NewDriverMetrics interns the driver bundle in r.
func NewDriverMetrics(r *Registry) *DriverMetrics {
	return &DriverMetrics{
		Jobs:        r.Counter("driver.jobs"),
		JobsSolved:  r.Counter("driver.jobs_solved"),
		Diagnostics: r.Counter("driver.diagnostics"),
	}
}
