package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live per-phase ticker for long runs: phase
// announcements print immediately, and counted phases (job pools)
// re-print at most every interval so a parallel driver does not flood
// stderr. All methods are nil-safe and goroutine-safe; output is a
// human courtesy, never part of a machine-readable report.
type Progress struct {
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	last time.Time

	done  atomic.Int64
	total int64
	label string
}

// NewProgress returns a ticker writing to w (typically stderr),
// printing counted updates at most every 200ms.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, interval: 200 * time.Millisecond}
}

// Phasef prints one immediate progress line. Nil-safe.
func (p *Progress) Phasef(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	fmt.Fprintf(p.w, "progress: "+format+"\n", args...)
	p.mu.Unlock()
}

// StartCount begins a counted phase of total steps. Nil-safe.
func (p *Progress) StartCount(label string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.total = int64(total)
	p.last = time.Time{}
	p.mu.Unlock()
	p.done.Store(0)
}

// Tick marks one step of the counted phase done, printing a rate-
// limited progress line. Nil-safe; safe for concurrent workers.
func (p *Progress) Tick() {
	if p == nil {
		return
	}
	n := p.done.Add(1)
	now := time.Now()
	p.mu.Lock()
	if n == p.total || now.Sub(p.last) >= p.interval {
		p.last = now
		fmt.Fprintf(p.w, "progress: %s %d/%d\n", p.label, n, p.total)
	}
	p.mu.Unlock()
}
