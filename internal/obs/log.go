package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo so a
// zero-configured logger behaves like a conventional server log.
type Level int8

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way the JSON lines spell it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger emits structured leveled JSON lines: one object per line with
// "ts" (RFC 3339, millisecond precision, UTC), "level", "msg", then the
// caller's key/value pairs in the order given — deterministic field
// order, so log pipelines and tests can match lines without a JSON
// parser. Like every obs instrument, a nil *Logger is a no-op on every
// method, and below-threshold calls cost one comparison.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	now   func() time.Time // test hook; nil means time.Now
}

// NewLogger builds a logger writing JSON lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether the logger would emit at level. Nil-safe
// (false), so callers can skip expensive field assembly.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug emits a debug line. kv is alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info line.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warning line.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error line.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	var buf bytes.Buffer
	buf.WriteString(`{"ts":"`)
	buf.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z07:00"))
	buf.WriteString(`","level":"`)
	buf.WriteString(level.String())
	buf.WriteString(`","msg":`)
	writeJSONValue(&buf, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		buf.WriteByte(',')
		writeJSONValue(&buf, key)
		buf.WriteByte(':')
		writeJSONValue(&buf, kv[i+1])
	}
	if len(kv)%2 == 1 {
		// A dangling key is logged rather than dropped, so the mistake is
		// visible in the output it garbled.
		buf.WriteString(`,"!BADKEY":`)
		writeJSONValue(&buf, kv[len(kv)-1])
	}
	buf.WriteString("}\n")
	l.mu.Lock()
	l.w.Write(buf.Bytes())
	l.mu.Unlock()
}

// writeJSONValue marshals one value; values that fail to marshal render
// as their fmt string so a log line is never silently lost.
func writeJSONValue(buf *bytes.Buffer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprint(v))
	}
	buf.Write(data)
}
