package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// is a no-op on every method, so instrumented code can hold counters
// unconditionally and pay one nil test when metrics are off.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a max-tracking update for
// high-water marks. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n is larger (a lock-free high-water
// mark). Nil-safe.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram over fixed ascending bucket upper
// bounds (the last implicit bucket is +inf), with atomic per-bucket
// counts: observations never allocate and concurrent Observe calls
// need no lock. Nil-safe like Counter.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// DefaultSizeBounds is the power-of-two bucket ladder used for size
// distributions (reach-set sizes, layer widths).
var DefaultSizeBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// DefaultLatencyBounds is the power-of-two millisecond ladder used for
// request/operation latency distributions; the implicit final bucket
// catches anything over ~16s.
var DefaultLatencyBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts: it returns the upper bound of the first bucket at which the
// cumulative count reaches q of the total. The estimate is exact up to
// bucket granularity; samples landing in the implicit +inf bucket
// report one past the last finite bound. Returns 0 on nil or when no
// samples were observed.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= need {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] + 1
		}
	}
	return h.bounds[len(h.bounds)-1] + 1
}

// Registry interns named counters, gauges and histograms. Interning is
// mutex-guarded; the returned instruments update lock-free. All methods
// are nil-safe and return nil (no-op) instruments on a nil registry, so
// "metrics off" is one nil registry test at setup time.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter interns a counter by name. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns a gauge by name. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns a histogram by name; bounds apply only on first
// creation. Nil-safe.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistBucket is one exported histogram bucket; LE is nil for the final
// +inf bucket.
type HistBucket struct {
	LE    *int64 `json:"le"`
	Count int64  `json:"count"`
}

// HistSnapshot is one exported histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

// MetricsSnapshot is the exported (and schema-validated) form of a
// registry: plain sorted-key maps.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value. Nil-safe (empty
// snapshot).
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		// Count is derived from the bucket counts actually read, not the
		// histogram's own counter: under concurrent Observe the two can
		// disagree transiently, and every snapshot must satisfy the
		// "bucket counts sum to count" invariant the schema validators
		// (JSON and Prometheus) enforce.
		hs := HistSnapshot{Sum: h.sum.Load()}
		for i := range h.counts {
			b := HistBucket{Count: h.counts[i].Load()}
			if i < len(h.bounds) {
				le := h.bounds[i]
				b.LE = &le
			}
			hs.Count += b.Count
			hs.Buckets = append(hs.Buckets, b)
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), so repeated exports of identical
// state are byte-identical. Nil-safe.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Fprintf-style convenience used by CLIs to show a few headline
// counters without dumping the whole snapshot.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", n, snap.Counters[n])
	}
	return s
}
