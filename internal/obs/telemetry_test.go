package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("consecutive trace ids collide")
	}
}

func TestFlightWraparoundOrder(t *testing.T) {
	f := NewFlight(FlightConfig{Recent: 4, Slowest: -1})
	for i := 1; i <= 10; i++ {
		f.Record(FlightMeta{TraceID: fmt.Sprintf("t%02d", i), DurUS: int64(i)}, nil)
	}
	got := f.Entries()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	for i, e := range got {
		want := fmt.Sprintf("t%02d", 7+i)
		if e.TraceID != want || e.Seq != uint64(7+i) {
			t.Fatalf("entry %d = %s/seq %d, want %s/seq %d", i, e.TraceID, e.Seq, want, 7+i)
		}
	}
}

func TestFlightSlowestEviction(t *testing.T) {
	f := NewFlight(FlightConfig{Recent: 2, Slowest: 2})
	// Durations chosen so the slowest set must evict its fastest member.
	for i, dur := range []int64{50, 10, 90, 30, 70, 5} {
		f.Record(FlightMeta{TraceID: fmt.Sprintf("d%d", i), DurUS: dur}, nil)
	}
	// Ring holds the last two (70, 5); slowest-ever are 90 and 70.
	ids := map[string]bool{}
	for _, e := range f.Entries() {
		ids[e.TraceID] = true
	}
	for _, want := range []string{"d2", "d4", "d5"} { // 90, 70, 5
		if !ids[want] {
			t.Fatalf("retained set %v missing %s", ids, want)
		}
	}
	if ids["d0"] || ids["d1"] || ids["d3"] {
		t.Fatalf("retained set %v holds an evicted entry", ids)
	}
	st := f.Stats()
	if st.Recorded != 6 || st.Slowest != 2 || st.SlowestUS != 90 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightSlowRequestPersists(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	f := NewFlight(FlightConfig{SlowUS: 1000, Dir: dir, Metrics: r})

	tr := NewTracer()
	tr.Start("request:fast").Finish()
	f.Record(FlightMeta{TraceID: "fastreq", DurUS: 500}, tr)

	tr = NewTracer()
	sp := tr.Start("request:slow")
	sp.Child("solve").Finish()
	sp.Finish()
	f.Record(FlightMeta{TraceID: "slowreq", Program: "p", DurUS: 5000}, tr)

	if _, err := os.Stat(filepath.Join(dir, "flight-fastreq.json")); !os.IsNotExist(err) {
		t.Fatal("fast request was persisted")
	}
	data, err := os.ReadFile(filepath.Join(dir, "flight-slowreq.json"))
	if err != nil {
		t.Fatalf("slow trace not persisted: %v", err)
	}
	if err := ValidateTraceJSON(data); err != nil {
		t.Fatalf("persisted trace invalid: %v", err)
	}
	if !strings.Contains(string(data), "request:slow") {
		t.Fatal("persisted trace missing the slow request's spans")
	}
	e, ok := f.Lookup("slowreq")
	if !ok || !e.Persisted {
		t.Fatalf("lookup slowreq = %+v, %v; want persisted entry", e, ok)
	}
	if e, ok := f.Lookup("fastreq"); !ok || e.Persisted {
		t.Fatalf("lookup fastreq = %+v, %v; want retained unpersisted entry", e, ok)
	}
	if r.Counter("flight.recorded").Value() != 2 || r.Counter("flight.persisted").Value() != 1 {
		t.Fatalf("flight counters = %s", r.Summary())
	}
}

func TestFlightWriteChrome(t *testing.T) {
	f := NewFlight(FlightConfig{})
	for _, id := range []string{"aaa", "bbb"} {
		tr := NewTracer()
		tr.Start("request:" + id).Finish()
		f.Record(FlightMeta{TraceID: id, DurUS: 10}, tr)
	}
	var all bytes.Buffer
	if err := f.WriteChrome(&all, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(all.Bytes()); err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(all.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		pids[ev.PID] = true
	}
	if len(tf.TraceEvents) != 2 || !pids[1] || !pids[2] {
		t.Fatalf("dump events/pids = %d/%v, want one event each on pids 1 and 2", len(tf.TraceEvents), pids)
	}

	var one bytes.Buffer
	if err := f.WriteChrome(&one, "bbb"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(one.String(), "request:bbb") || strings.Contains(one.String(), "request:aaa") {
		t.Fatal("single-trace dump has the wrong events")
	}
	if err := f.WriteChrome(&one, "missing"); err == nil {
		t.Fatal("dump of an unretained trace should fail")
	}

	var nilDump bytes.Buffer
	var nf *Flight
	nf.Record(FlightMeta{}, nil)
	if err := nf.WriteChrome(&nilDump, ""); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(nilDump.Bytes()); err != nil {
		t.Fatalf("nil flight dump invalid: %v", err)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(7)
	r.Gauge("engine.resident_programs").Set(3)
	h := r.Histogram("server.request_ms", []int64{1, 8})
	for _, v := range []int64{0, 1, 2, 9} {
		h.Observe(v)
	}
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated expositions differ")
	}
	if err := ValidatePrometheus(a.Bytes()); err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	}
	for _, want := range []string{
		"# TYPE server_requests counter\nserver_requests 7\n",
		"# TYPE engine_resident_programs gauge\nengine_resident_programs 3\n",
		"# TYPE server_request_ms histogram\n",
		"server_request_ms_bucket{le=\"1\"} 2\n",
		"server_request_ms_bucket{le=\"8\"} 3\n",
		"server_request_ms_bucket{le=\"+Inf\"} 4\n",
		"server_request_ms_sum 12\n",
		"server_request_ms_count 4\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := []struct{ name, data, want string }{
		{"undeclared sample", "foo 1\n", "no TYPE"},
		{"bad value", "# TYPE foo counter\nfoo many\n", "bad value"},
		{"bad name", "# TYPE 9foo counter\n9foo 1\n", "bad metric name"},
		{"descending le", "# TYPE h histogram\nh_bucket{le=\"8\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not ascending"},
		{"decreasing cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"8\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "decrease"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= count"},
		{"missing le", "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n", "le label"},
	}
	for _, tc := range cases {
		err := ValidatePrometheus([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := ValidatePrometheus([]byte("# HELP foo help text\n# TYPE foo counter\nfoo 1 1700000000\n\n")); err != nil {
		t.Errorf("valid exposition with HELP and timestamp rejected: %v", err)
	}
}

func TestLoggerLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 123e6, time.UTC) }
	l.Debug("hidden")
	l.Info("request", "method", "POST", "status", 200, "dur_ms", 1.5)
	l.Warn("odd", "key")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	want := `{"ts":"2026-08-07T12:00:00.123Z","level":"info","msg":"request","method":"POST","status":200,"dur_ms":1.5}`
	if lines[0] != want {
		t.Fatalf("line = %s\nwant   %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"!BADKEY":"key"`) {
		t.Fatalf("dangling key not flagged: %s", lines[1])
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line is not JSON: %s", line)
		}
	}

	var nl *Logger
	nl.Info("dropped")
	if nl.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

func TestWindowStats(t *testing.T) {
	w := NewWindow([]int64{10, 100})
	base := time.Unix(1_000_000, 0)
	// 90 fast requests and 10 slow errors over the last 30 seconds.
	for i := 0; i < 90; i++ {
		w.Observe(base.Add(-time.Duration(i%30)*time.Second), 5, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(base.Add(-time.Duration(i%30)*time.Second), 500, true)
	}
	st := w.Stats(base, time.Minute)
	if st.Requests != 100 || st.Errors != 10 {
		t.Fatalf("requests/errors = %d/%d", st.Requests, st.Errors)
	}
	if st.ErrorRate != 0.10 {
		t.Fatalf("error rate = %v", st.ErrorRate)
	}
	if want := 100.0 / 60.0; st.RatePerSec != want {
		t.Fatalf("rate = %v, want %v", st.RatePerSec, want)
	}
	if st.P50MS != 10 {
		t.Fatalf("p50 = %d, want 10", st.P50MS)
	}
	if st.P99MS != 101 { // overflow bucket: largest bound + 1
		t.Fatalf("p99 = %d, want 101", st.P99MS)
	}

	// A minute later the 1m window is empty but 5m still sees them.
	later := base.Add(90 * time.Second)
	if st := w.Stats(later, time.Minute); st.Requests != 0 {
		t.Fatalf("1m window after idle minute = %+v", st)
	}
	if st := w.Stats(later, 5*time.Minute); st.Requests != 100 {
		t.Fatalf("5m window = %+v", st)
	}

	var nw *Window
	nw.Observe(base, 1, false)
	if st := nw.Stats(base, time.Minute); st != (WindowStats{}) {
		t.Fatalf("nil window stats = %+v", st)
	}
}

func TestWindowBucketReuse(t *testing.T) {
	w := NewWindow(nil)
	base := time.Unix(2_000_000, 0)
	w.Observe(base, 1, false)
	// windowSeconds later the same ring slot is reused for a new second;
	// the old observation must not leak into the new window.
	wrap := base.Add(windowSeconds * time.Second)
	w.Observe(wrap, 1, false)
	if st := w.Stats(wrap, 5*time.Minute); st.Requests != 1 {
		t.Fatalf("requests after ring reuse = %d, want 1", st.Requests)
	}
}

func TestRegistrySnapshotDuringUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", DefaultLatencyBounds)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(int64(i % 50))
				}
			}
		}()
	}
	var lastCount int64
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		hs := snap.Histograms["h"]
		if hs.Count < lastCount {
			t.Fatalf("snapshot count went backwards: %d -> %d", lastCount, hs.Count)
		}
		lastCount = hs.Count
		if got := len(hs.Buckets); got != len(DefaultLatencyBounds)+1 {
			t.Fatalf("snapshot has %d buckets", got)
		}
		if err := ValidatePrometheus(expose(t, snap)); err != nil {
			t.Fatalf("live exposition invalid: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	// Quiesced: bucket counts must again sum exactly to the count.
	snap := r.Snapshot()
	var total int64
	for _, b := range snap.Histograms["h"].Buckets {
		total += b.Count
	}
	if total != snap.Histograms["h"].Count || snap.Counters["c"] == 0 {
		t.Fatalf("quiesced bucket sum %d != count %d", total, snap.Histograms["h"].Count)
	}
}

func expose(t *testing.T, snap MetricsSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram(DefaultLatencyBounds)
	last := DefaultLatencyBounds[len(DefaultLatencyBounds)-1]
	h.Observe(0)        // exactly the first bound
	h.Observe(16)       // exactly an interior bound
	h.Observe(17)       // one past it
	h.Observe(last)     // exactly the final finite bound
	h.Observe(last + 1) // overflow bucket
	find := func(bound int64) int64 {
		for i, b := range h.bounds {
			if b == bound {
				return h.counts[i].Load()
			}
		}
		t.Fatalf("no bucket with bound %d", bound)
		return 0
	}
	if find(0) != 1 || find(16) != 1 || find(32) != 1 || find(last) != 1 {
		t.Fatal("boundary values landed in the wrong buckets")
	}
	if h.counts[len(h.bounds)].Load() != 1 {
		t.Fatal("overflow value missed the +inf bucket")
	}
	if got := h.Quantile(1.0); got != last+1 {
		t.Fatalf("max quantile = %d, want %d (overflow)", got, last+1)
	}
}
