package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Structural schema validation for the two JSON artifacts the layer
// emits. The "schema" is enforced the zero-dependency way: strict
// decoding (unknown fields rejected) into the exporting types plus
// explicit invariant checks, so a CI job can assert that -trace-out
// and -metrics-json files are well-formed without a JSON Schema
// engine.

// ValidateTraceJSON checks that data is a well-formed Chrome
// trace-event file as WriteJSON emits it: an object with a
// traceEvents array of complete (ph="X") events carrying non-empty
// names and non-negative timestamps/durations/lane ids.
func ValidateTraceJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f traceFile
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("obs: trace: missing traceEvents array")
	}
	if f.DisplayTimeUnit != "ms" && f.DisplayTimeUnit != "ns" {
		return fmt.Errorf("obs: trace: displayTimeUnit %q, want ms or ns", f.DisplayTimeUnit)
	}
	for i, ev := range f.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("obs: trace: event %d has no name", i)
		case ev.Ph != "X":
			return fmt.Errorf("obs: trace: event %d (%s) has phase %q, want X", i, ev.Name, ev.Ph)
		case ev.TS < 0 || ev.Dur < 0:
			return fmt.Errorf("obs: trace: event %d (%s) has negative time", i, ev.Name)
		case ev.PID < 0 || ev.TID < 0:
			return fmt.Errorf("obs: trace: event %d (%s) has negative pid/tid", i, ev.Name)
		}
	}
	return nil
}

// ValidateMetricsJSON checks that data is a well-formed metrics
// snapshot: the three instrument maps present, counters and histogram
// counts non-negative, bucket bounds strictly ascending with exactly
// one +inf (null-bound) final bucket, and each histogram's total count
// equal to the sum of its bucket counts.
func ValidateMetricsJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var snap MetricsSnapshot
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("obs: metrics: %w", err)
	}
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		return fmt.Errorf("obs: metrics: missing counters/gauges/histograms map")
	}
	for name, v := range snap.Counters {
		if v < 0 {
			return fmt.Errorf("obs: metrics: counter %s is negative (%d)", name, v)
		}
	}
	for name, h := range snap.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("obs: metrics: histogram %s has negative count", name)
		}
		if len(h.Buckets) == 0 {
			return fmt.Errorf("obs: metrics: histogram %s has no buckets", name)
		}
		var total int64
		var prev *int64
		for i, b := range h.Buckets {
			if b.Count < 0 {
				return fmt.Errorf("obs: metrics: histogram %s bucket %d has negative count", name, i)
			}
			total += b.Count
			if b.LE == nil {
				if i != len(h.Buckets)-1 {
					return fmt.Errorf("obs: metrics: histogram %s has a non-final +inf bucket", name)
				}
				continue
			}
			if prev != nil && *b.LE <= *prev {
				return fmt.Errorf("obs: metrics: histogram %s bucket bounds not ascending", name)
			}
			prev = b.LE
		}
		if last := h.Buckets[len(h.Buckets)-1]; last.LE != nil {
			return fmt.Errorf("obs: metrics: histogram %s lacks the final +inf bucket", name)
		}
		if total != h.Count {
			return fmt.Errorf("obs: metrics: histogram %s bucket counts sum to %d, want %d", name, total, h.Count)
		}
	}
	return nil
}
