package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.SetMax(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram stats")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry should intern nil instruments")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	sp := tr.Start("phase")
	sp.SetAttr("k", 1)
	sp.Child("sub").Finish()
	sp.Finish()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("empty trace should validate: %v", err)
	}
	var p *Progress
	p.Phasef("x %d", 1)
	p.StartCount("jobs", 3)
	p.Tick()
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not interned")
	}
	if r.Histogram("h", DefaultSizeBounds) != r.Histogram("h", nil) {
		t.Fatal("histogram not interned")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DefaultSizeBounds)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Fatalf("gauge high-water = %d, want %d", g.Value(), workers*per-1)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	snap := r.Snapshot()
	var total int64
	for _, b := range snap.Histograms["h"].Buckets {
		total += b.Count
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]int64{0, 2, 8})
	for _, v := range []int64{0, 1, 2, 3, 8, 9, 100} {
		h.Observe(v)
	}
	want := []int64{1, 2, 2, 2} // ≤0: {0}; ≤2: {1,2}; ≤8: {3,8}; +inf: {9,100}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Sum() != 123 || h.Count() != 7 {
		t.Fatalf("sum/count = %d/%d", h.Sum(), h.Count())
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver.edges_added").Add(42)
	r.Gauge("solver.worklist_high_water").SetMax(17)
	r.Histogram("solver.reach_set_size", DefaultSizeBounds).Observe(33)
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated exports differ")
	}
	if err := ValidateMetricsJSON(a.Bytes()); err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(a.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["solver.edges_added"] != 42 {
		t.Fatalf("counter round-trip = %d", snap.Counters["solver.edges_added"])
	}
	if snap.Gauges["solver.worklist_high_water"] != 17 {
		t.Fatalf("gauge round-trip = %d", snap.Gauges["solver.worklist_high_water"])
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("analyze")
	root.SetAttr("entries", 3)
	child := root.Child("solve")
	child.Finish()
	child.Finish() // double Finish records once
	root.Finish()
	other := tr.Start("render")
	other.Finish()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"analyze", "solve", "render"} {
		if !names[want] {
			t.Fatalf("missing event %q", want)
		}
	}
}

func TestTracerLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	if a.lane == b.lane {
		t.Fatal("concurrent top-level spans share a lane")
	}
	a.Finish()
	c := tr.Start("c")
	if c.lane != a.lane {
		t.Fatalf("lane not reused: got %d, want %d", c.lane, a.lane)
	}
	b.Finish()
	c.Finish()
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) error
		data string
		want string
	}{
		{"trace unknown field", ValidateTraceJSON, `{"traceEvents":[],"displayTimeUnit":"ms","bogus":1}`, "bogus"},
		{"trace bad phase", ValidateTraceJSON, `{"traceEvents":[{"name":"x","ph":"B","ts":0,"dur":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`, "phase"},
		{"trace missing events", ValidateTraceJSON, `{"displayTimeUnit":"ms"}`, "traceEvents"},
		{"metrics unknown field", ValidateMetricsJSON, `{"counters":{},"gauges":{},"histograms":{},"extra":{}}`, "extra"},
		{"metrics missing maps", ValidateMetricsJSON, `{"counters":{}}`, "missing"},
		{"metrics bad bucket sum", ValidateMetricsJSON,
			`{"counters":{},"gauges":{},"histograms":{"h":{"count":5,"sum":1,"buckets":[{"le":1,"count":1},{"le":null,"count":1}]}}}`,
			"sum to"},
		{"metrics non-final inf", ValidateMetricsJSON,
			`{"counters":{},"gauges":{},"histograms":{"h":{"count":2,"sum":1,"buckets":[{"le":null,"count":1},{"le":1,"count":1}]}}}`,
			"non-final"},
	}
	for _, tc := range cases {
		err := tc.fn([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSolverMetricBundles(t *testing.T) {
	r := NewRegistry()
	sm := NewSolverMetrics(r)
	sm.EdgesAdded.Inc()
	sm.WorklistHigh.SetMax(9)
	sm.ReachSetSize.Observe(4)
	if r.Counter("solver.edges_added").Value() != 1 {
		t.Fatal("bundle not interned in registry")
	}
	cm := NewCacheMetrics(r)
	cm.Hits.Add(2)
	cm.Misses.Inc()
	if got := r.Counter("cache.hits").Value(); got != 2 {
		t.Fatalf("cache.hits = %d", got)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "cache.hits=2") || !strings.Contains(sum, "solver.edges_added=1") {
		t.Fatalf("summary %q missing counters", sum)
	}
}
