// Package obs is the toolkit's zero-dependency observability layer: a
// hierarchical span tracer exported as Chrome trace-event JSON (viewable
// in Perfetto or chrome://tracing), a metrics registry of atomic
// counters, gauges and bounded histograms, and the hook bundles the
// solver (internal/core), skeleton layer (internal/pdm) and analysis
// cache feed when a caller opts in. Every entry point is nil-safe: a
// nil *Tracer, *Span, *Counter, *Gauge or *Histogram is a no-op, so
// instrumented code gates on a single pointer test and the disabled
// path costs one predictable branch.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records spans and renders them as Chrome trace-event JSON.
// Methods are safe for concurrent use; each Span must be finished by
// the goroutine tree that started it (a span itself is not shared).
type Tracer struct {
	mu     sync.Mutex
	origin time.Time
	events []traceEvent
	lanes  []bool // busy top-level lanes ("tid"s in the trace)
}

// traceEvent is one Chrome trace-format "complete" (ph=X) event.
// Times are microseconds from the tracer's origin.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk envelope (the object form, which Perfetto
// and chrome://tracing both accept).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{origin: time.Now()}
}

// Span is one in-flight (or finished) trace span. The zero of *Span is
// usable: every method on a nil span is a no-op, so callers thread
// spans unconditionally and pay nothing when tracing is off.
type Span struct {
	t     *Tracer
	name  string
	lane  int
	top   bool // this span owns its lane and frees it on Finish
	start time.Duration
	args  map[string]any
	done  bool
}

// Start opens a top-level span on the first free lane. Concurrent
// top-level spans land on distinct lanes so Perfetto renders them as
// parallel tracks; children share their parent's lane and nest by time
// containment. Returns nil (a no-op span) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lane := -1
	for i, busy := range t.lanes {
		if !busy {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, false)
	}
	t.lanes[lane] = true
	t.mu.Unlock()
	return &Span{t: t, name: name, lane: lane, top: true, start: time.Since(t.origin)}
}

// Child opens a sub-span on the parent's lane. Nil-safe.
func (sp *Span) Child(name string) *Span {
	if sp == nil || sp.t == nil {
		return nil
	}
	return &Span{t: sp.t, name: name, lane: sp.lane, start: time.Since(sp.t.origin)}
}

// SetAttr attaches a key/value argument shown in the trace viewer's
// span details. Not safe for concurrent use on one span. Nil-safe.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	if sp.args == nil {
		sp.args = map[string]any{}
	}
	sp.args[key] = value
}

// Finish closes the span, recording it in the tracer. Finishing twice
// records once. Nil-safe.
func (sp *Span) Finish() {
	if sp == nil || sp.done {
		return
	}
	sp.done = true
	t := sp.t
	end := time.Since(t.origin)
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: sp.name,
		Ph:   "X",
		TS:   sp.start.Microseconds(),
		Dur:  (end - sp.start).Microseconds(),
		PID:  1,
		TID:  sp.lane,
		Args: sp.args,
	})
	if sp.top {
		t.lanes[sp.lane] = false
	}
	t.mu.Unlock()
}

// WriteJSON renders the finished spans as a Chrome trace-event file.
// Events are ordered by start time (then lane) so output is
// deterministic for a deterministic span schedule. Nil-safe (writes an
// empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		out.TraceEvents = append(out.TraceEvents, t.events...)
		t.mu.Unlock()
		sort.SliceStable(out.TraceEvents, func(i, j int) bool {
			a, b := out.TraceEvents[i], out.TraceEvents[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			return a.TID < b.TID
		})
	}
	return writeTraceFile(w, out)
}

// writeTraceFile encodes one trace envelope as indented JSON.
func writeTraceFile(w io.Writer, out traceFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
