package dfa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// oneBit builds the 1-bit gen/kill machine of Figure 1: states 0 (off) and
// 1 (on); g sends both states to 1, k sends both to 0; accept when on.
func oneBit(t *testing.T) *DFA {
	t.Helper()
	alpha := NewAlphabet("g", "k")
	d := NewDFA(alpha, 2, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(1, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, k, 0)
	d.SetAccept(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return d
}

// privilege builds the Figure 3 process-privilege machine with stuttering
// self loops on unmentioned symbols.
func privilege(t *testing.T) *DFA {
	t.Helper()
	alpha := NewAlphabet("seteuid0", "seteuidN", "execl")
	d := NewDFA(alpha, 3, 0) // 0=Unpriv 1=Priv 2=Error
	s0, _ := alpha.Lookup("seteuid0")
	sN, _ := alpha.Lookup("seteuidN")
	ex, _ := alpha.Lookup("execl")
	d.SetTransition(0, s0, 1)
	d.SetTransition(1, sN, 0)
	d.SetTransition(1, ex, 2)
	d.SetAccept(2)
	d.StateName = []string{"Unpriv", "Priv", "Error"}
	return d.CompleteSelfLoop()
}

func TestOneBitAccepts(t *testing.T) {
	d := oneBit(t)
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{}, false},
		{[]string{"g"}, true},
		{[]string{"k"}, false},
		{[]string{"g", "k"}, false},
		{[]string{"k", "g"}, true},
		{[]string{"g", "g"}, true},
		{[]string{"g", "k", "g"}, true},
	}
	for _, c := range cases {
		if got := d.AcceptsNames(c.word...); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestPrivilegeAccepts(t *testing.T) {
	d := privilege(t)
	if !d.AcceptsNames("seteuid0", "execl") {
		t.Error("priv then execl should reach Error")
	}
	if d.AcceptsNames("seteuid0", "seteuidN", "execl") {
		t.Error("dropping privilege before execl should be safe")
	}
	if d.AcceptsNames("execl") {
		t.Error("unprivileged execl should be safe")
	}
	if !d.AcceptsNames("seteuid0", "execl", "seteuidN") {
		t.Error("Error is a sink: suffixes stay accepting")
	}
}

func TestCompleteAddsDeadState(t *testing.T) {
	alpha := NewAlphabet("a")
	d := NewDFA(alpha, 1, 0)
	d.SetAccept(0)
	if d.IsTotal() {
		t.Fatal("expected partial machine")
	}
	c := d.Complete()
	if !c.IsTotal() {
		t.Fatal("Complete did not totalize")
	}
	if c.NumStates != 2 {
		t.Fatalf("NumStates = %d, want 2", c.NumStates)
	}
	if c.AcceptsNames("a") {
		t.Error("dead state must not accept")
	}
	if !c.AcceptsNames() {
		t.Error("empty word should still accept")
	}
}

func TestTrimRemovesUseless(t *testing.T) {
	alpha := NewAlphabet("a")
	d := NewDFA(alpha, 4, 0)
	a, _ := alpha.Lookup("a")
	// 0 -> 1 -> 2(accept); 3 unreachable; 2 has no out (so any word past
	// "aa" dies). State 1 and 0 are useful, 3 is not.
	d.SetTransition(0, a, 1)
	d.SetTransition(1, a, 2)
	d.SetTransition(3, a, 2)
	d.SetAccept(2)
	tr := d.Trim()
	if tr.NumStates != 3 {
		t.Fatalf("trimmed NumStates = %d, want 3", tr.NumStates)
	}
	if !tr.AcceptsNames("a", "a") {
		t.Error("trim changed the language")
	}
}

func TestMinimizeOneBit(t *testing.T) {
	d := oneBit(t)
	m := Minimize(d)
	if m.NumStates != 2 {
		t.Fatalf("minimal 1-bit machine has %d states, want 2", m.NumStates)
	}
	if !Equivalent(d, m) {
		t.Error("Minimize changed the language")
	}
}

func TestMinimizeCollapsesCopies(t *testing.T) {
	// Two redundant copies of the 1-bit "on" state must collapse.
	alpha := NewAlphabet("g", "k")
	d := NewDFA(alpha, 3, 0)
	g, _ := alpha.Lookup("g")
	k, _ := alpha.Lookup("k")
	d.SetTransition(0, g, 1)
	d.SetTransition(0, k, 0)
	d.SetTransition(1, g, 2) // goes to the copy
	d.SetTransition(1, k, 0)
	d.SetTransition(2, g, 1)
	d.SetTransition(2, k, 0)
	d.SetAccept(1)
	d.SetAccept(2)
	m := Minimize(d)
	if m.NumStates != 2 {
		t.Fatalf("minimized to %d states, want 2", m.NumStates)
	}
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	alpha := NewAlphabet("a")
	d := NewDFA(alpha, 2, 0)
	a, _ := alpha.Lookup("a")
	d.SetTransition(0, a, 1)
	d.SetTransition(1, a, 0)
	m := Minimize(d)
	if !Empty(m) {
		t.Error("empty language not preserved")
	}
	if m.NumStates != 1 {
		t.Errorf("minimal empty machine has %d states, want 1", m.NumStates)
	}
}

func TestDeterminizeSimple(t *testing.T) {
	// NFA for (a|b)*a: accepts words ending in a.
	alpha := NewAlphabet("a", "b")
	n := NewNFA(alpha, 2)
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	n.AddStart(0)
	n.AddTransition(0, a, 0)
	n.AddTransition(0, b, 0)
	n.AddTransition(0, a, 1)
	n.SetAccept(1)
	d := Minimize(n.Determinize())
	if d.NumStates != 2 {
		t.Fatalf("minimal machine for (a|b)*a has %d states, want 2", d.NumStates)
	}
	if !d.AcceptsNames("b", "a") || d.AcceptsNames("a", "b") || d.AcceptsNames() {
		t.Error("wrong language for (a|b)*a")
	}
}

func TestDeterminizeEpsilon(t *testing.T) {
	// NFA with epsilon: start -ε-> s1 -a-> accept.
	alpha := NewAlphabet("a")
	n := NewNFA(alpha, 3)
	a, _ := alpha.Lookup("a")
	n.AddStart(0)
	n.AddEps(0, 1)
	n.AddTransition(1, a, 2)
	n.SetAccept(2)
	d := n.Determinize()
	if !d.AcceptsNames("a") || d.AcceptsNames() || d.AcceptsNames("a", "a") {
		t.Error("epsilon closure handled incorrectly")
	}
}

func TestIntersectUnion(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	// L1 = words with at least one a (2-state machine).
	d1 := NewDFA(alpha, 2, 0)
	d1.SetTransition(0, a, 1)
	d1.SetTransition(0, b, 0)
	d1.SetTransition(1, a, 1)
	d1.SetTransition(1, b, 1)
	d1.SetAccept(1)
	// L2 = words with at least one b.
	d2 := NewDFA(alpha, 2, 0)
	d2.SetTransition(0, b, 1)
	d2.SetTransition(0, a, 0)
	d2.SetTransition(1, a, 1)
	d2.SetTransition(1, b, 1)
	d2.SetAccept(1)

	inter := Intersect(d1, d2)
	if !inter.AcceptsNames("a", "b") || inter.AcceptsNames("a") || inter.AcceptsNames("b") {
		t.Error("intersection wrong")
	}
	un := Union(d1, d2)
	if !un.AcceptsNames("a") || !un.AcceptsNames("b") || un.AcceptsNames() {
		t.Error("union wrong")
	}
}

func TestComplement(t *testing.T) {
	d := oneBit(t)
	c := Complement(d)
	if c.AcceptsNames("g") || !c.AcceptsNames("k") || !c.AcceptsNames() {
		t.Error("complement wrong")
	}
	// L ∩ ¬L = ∅
	if !Empty(Intersect(d, c)) {
		t.Error("L ∩ ¬L should be empty")
	}
}

func TestPrefixMachine(t *testing.T) {
	// L = {ab} exactly.
	alpha := NewAlphabet("a", "b")
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	d := NewDFA(alpha, 3, 0)
	d.SetTransition(0, a, 1)
	d.SetTransition(1, b, 2)
	d.SetAccept(2)
	p := PrefixMachine(d)
	for _, c := range []struct {
		w    []string
		want bool
	}{
		{[]string{}, true},
		{[]string{"a"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"b"}, false},
		{[]string{"a", "b", "a"}, false},
		{[]string{"a", "a"}, false},
	} {
		if got := p.AcceptsNames(c.w...); got != c.want {
			t.Errorf("prefix Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestSuffixMachine(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	d := NewDFA(alpha, 3, 0)
	d.SetTransition(0, a, 1)
	d.SetTransition(1, b, 2)
	d.SetAccept(2)
	s := SuffixMachine(d)
	for _, c := range []struct {
		w    []string
		want bool
	}{
		{[]string{}, true},
		{[]string{"b"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a"}, false},
		{[]string{"b", "a"}, false},
	} {
		if got := s.AcceptsNames(c.w...); got != c.want {
			t.Errorf("suffix Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestSubstringMachine(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	// L = {aba} exactly.
	d := NewDFA(alpha, 4, 0)
	d.SetTransition(0, a, 1)
	d.SetTransition(1, b, 2)
	d.SetTransition(2, a, 3)
	d.SetAccept(3)
	sub := SubstringMachine(d)
	for _, c := range []struct {
		w    []string
		want bool
	}{
		{[]string{}, true},
		{[]string{"a"}, true},
		{[]string{"b"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"b", "a"}, true},
		{[]string{"a", "b", "a"}, true},
		{[]string{"b", "b"}, false},
		{[]string{"a", "a"}, false},
	} {
		if got := sub.AcceptsNames(c.w...); got != c.want {
			t.Errorf("substring Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestDerivedMachinesEmptyLanguage(t *testing.T) {
	alpha := NewAlphabet("a")
	d := NewDFA(alpha, 1, 0) // no accepts: empty language
	for name, m := range map[string]*DFA{
		"prefix":    PrefixMachine(d),
		"suffix":    SuffixMachine(d),
		"substring": SubstringMachine(d),
	} {
		if !Empty(m) {
			t.Errorf("%s machine of empty language should be empty", name)
		}
	}
}

// randomDFA builds a random total DFA for property tests.
func randomDFA(r *rand.Rand, alpha *Alphabet, maxStates int) *DFA {
	n := 1 + r.Intn(maxStates)
	d := NewDFA(alpha, n, State(r.Intn(n)))
	for s := 0; s < n; s++ {
		if r.Intn(3) == 0 {
			d.SetAccept(State(s))
		}
		for sym := 0; sym < alpha.Size(); sym++ {
			d.SetTransition(State(s), Symbol(sym), State(r.Intn(n)))
		}
	}
	return d
}

func randomWord(r *rand.Rand, alpha *Alphabet, maxLen int) []Symbol {
	n := r.Intn(maxLen + 1)
	w := make([]Symbol, n)
	for i := range w {
		w[i] = Symbol(r.Intn(alpha.Size()))
	}
	return w
}

// Property: minimization preserves the language on random words.
func TestQuickMinimizePreservesLanguage(t *testing.T) {
	alpha := NewAlphabet("a", "b", "c")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 8)
		m := Minimize(d)
		for i := 0; i < 50; i++ {
			w := randomWord(r, alpha, 10)
			if d.Accepts(w) != m.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Minimize is idempotent in state count.
func TestQuickMinimizeIdempotent(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 10)
		m1 := Minimize(d)
		m2 := Minimize(m1)
		return m1.NumStates == m2.NumStates && Equivalent(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: substring machine accepts every infix of every accepted word.
func TestQuickSubstringContainsInfixes(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 6)
		sub := SubstringMachine(d)
		for i := 0; i < 30; i++ {
			w := randomWord(r, alpha, 8)
			if !d.Accepts(w) {
				continue
			}
			for lo := 0; lo <= len(w); lo++ {
				for hi := lo; hi <= len(w); hi++ {
					if !sub.Accepts(w[lo:hi]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: prefix machine = substrings anchored at the left.
func TestQuickPrefixContainsPrefixes(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 6)
		p := PrefixMachine(d)
		for i := 0; i < 30; i++ {
			w := randomWord(r, alpha, 8)
			if !d.Accepts(w) {
				continue
			}
			for hi := 0; hi <= len(w); hi++ {
				if !p.Accepts(w[:hi]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: determinize(FromDFA(d)) is language-equivalent to d.
func TestQuickDeterminizeRoundTrip(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 7)
		d2 := FromDFA(d).Determinize()
		return Equivalent(d, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: complement twice is the original language.
func TestQuickComplementInvolution(t *testing.T) {
	alpha := NewAlphabet("a", "b")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDFA(r, alpha, 7)
		return Equivalent(d, Complement(Complement(d)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAlphabetIntern(t *testing.T) {
	a := NewAlphabet("x", "y", "x")
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	sx, ok := a.Lookup("x")
	if !ok || a.Name(sx) != "x" {
		t.Error("intern/lookup mismatch")
	}
	if _, ok := a.Lookup("z"); ok {
		t.Error("z should be unknown")
	}
	if a.Intern("z") != Symbol(2) {
		t.Error("new symbol should get next id")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	alpha := NewAlphabet("a")
	d := NewDFA(alpha, 2, 0)
	d.Delta[0][0] = 7
	if err := d.Validate(); err == nil {
		t.Error("out-of-range transition not caught")
	}
	d2 := NewDFA(alpha, 2, 5)
	if err := d2.Validate(); err == nil {
		t.Error("out-of-range start not caught")
	}
}

func TestDOT(t *testing.T) {
	d := oneBit(t)
	dot := d.DOT("onebit")
	for _, want := range []string{"digraph \"onebit\"", "doublecircle", "label=\"g\"", "__start"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if d.DOT("") == "" {
		t.Error("empty name should still render")
	}
}
