// Package dfa implements the finite automata substrate for regularly
// annotated set constraints: deterministic and nondeterministic finite
// automata over interned alphabets, subset construction, Hopcroft
// minimization, product machines, and the derived prefix, suffix, and
// substring machines used by the forward, backward, and bidirectional
// solving strategies of Kodumal and Aiken (PLDI 2007).
package dfa

import (
	"fmt"
	"sort"
)

// Symbol is an interned alphabet symbol. Symbols are small non-negative
// integers assigned by an Alphabet in order of interning.
type Symbol int

// Alphabet interns symbol names. Machines that share an Alphabet can be
// combined with product constructions; the zero value is empty and ready
// to use via Intern.
type Alphabet struct {
	names []string
	index map[string]Symbol
}

// NewAlphabet returns an alphabet containing the given symbol names in
// order. Duplicate names are interned once.
func NewAlphabet(names ...string) *Alphabet {
	a := &Alphabet{}
	for _, n := range names {
		a.Intern(n)
	}
	return a
}

// Intern returns the symbol for name, assigning a fresh symbol if the name
// has not been seen before.
func (a *Alphabet) Intern(name string) Symbol {
	if a.index == nil {
		a.index = make(map[string]Symbol)
	}
	if s, ok := a.index[name]; ok {
		return s
	}
	s := Symbol(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = s
	return s
}

// Lookup returns the symbol for name and whether it is interned.
func (a *Alphabet) Lookup(name string) (Symbol, bool) {
	s, ok := a.index[name]
	return s, ok
}

// Name returns the name of symbol s.
func (a *Alphabet) Name(s Symbol) string {
	if s < 0 || int(s) >= len(a.names) {
		return fmt.Sprintf("sym#%d", int(s))
	}
	return a.names[s]
}

// Size returns the number of interned symbols.
func (a *Alphabet) Size() int { return len(a.names) }

// Names returns a copy of the symbol names in interning order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// SortedNames returns the symbol names sorted lexicographically; useful for
// deterministic output.
func (a *Alphabet) SortedNames() []string {
	out := a.Names()
	sort.Strings(out)
	return out
}
