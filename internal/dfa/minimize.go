package dfa

// Minimize returns the minimal total DFA for d's language using Hopcroft's
// partition-refinement algorithm. The input is completed first; unreachable
// states are dropped. The result is total and has a canonical state
// numbering (BFS order from the start state), so two calls on
// language-equivalent machines over the same alphabet yield structurally
// identical results.
func Minimize(d *DFA) *DFA {
	d = d.Complete()
	// Drop unreachable states first; Hopcroft assumes all states matter.
	reach := d.Reachable()
	remap := make([]State, d.NumStates)
	n := 0
	for s := 0; s < d.NumStates; s++ {
		if reach[s] {
			remap[s] = State(n)
			n++
		} else {
			remap[s] = None
		}
	}
	m := NewDFA(d.Alpha, n, remap[d.Start])
	for s := 0; s < d.NumStates; s++ {
		ns := remap[s]
		if ns == None {
			continue
		}
		m.Accept[ns] = d.Accept[s]
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			m.Delta[ns][sym] = remap[d.Delta[s][sym]]
		}
	}
	d = m

	nsym := d.Alpha.Size()
	// Reverse transition lists: rev[sym][state] = predecessors.
	rev := make([][][]State, nsym)
	for sym := 0; sym < nsym; sym++ {
		rev[sym] = make([][]State, d.NumStates)
	}
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < nsym; sym++ {
			t := d.Delta[s][sym]
			rev[sym][t] = append(rev[sym][t], State(s))
		}
	}

	// Partition as slice of blocks; each state knows its block.
	blockOf := make([]int, d.NumStates)
	var blocks [][]State
	var acc, rej []State
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			acc = append(acc, State(s))
		} else {
			rej = append(rej, State(s))
		}
	}
	addBlock := func(states []State) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			blockOf[s] = id
		}
		return id
	}
	if len(acc) > 0 {
		addBlock(acc)
	}
	if len(rej) > 0 {
		addBlock(rej)
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct {
		block int
		sym   Symbol
	}
	inWork := make(map[splitter]bool)
	var work []splitter
	push := func(b int, sym Symbol) {
		sp := splitter{b, sym}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	smaller := 0
	if len(blocks) == 2 && len(blocks[1]) < len(blocks[0]) {
		smaller = 1
	}
	for sym := 0; sym < nsym; sym++ {
		push(smaller, Symbol(sym))
		// Pushing both initial blocks is also correct and keeps the code
		// simple for the single-block case.
		if len(blocks) == 2 {
			push(1-smaller, Symbol(sym))
		}
	}

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[sp] = false

		// X = set of states with a transition on sym into sp.block.
		members := blocks[sp.block]
		inX := make(map[State]bool)
		for _, t := range members {
			for _, p := range rev[sp.sym][t] {
				inX[p] = true
			}
		}
		if len(inX) == 0 {
			continue
		}
		// Group affected states by their current block.
		affected := make(map[int][]State)
		for p := range inX {
			affected[blockOf[p]] = append(affected[blockOf[p]], p)
		}
		for b, hit := range affected {
			if len(hit) == len(blocks[b]) {
				continue // block entirely inside X: no split
			}
			// Split block b into hit and rest.
			hitSet := make(map[State]bool, len(hit))
			for _, s := range hit {
				hitSet[s] = true
			}
			var rest []State
			for _, s := range blocks[b] {
				if !hitSet[s] {
					rest = append(rest, s)
				}
			}
			blocks[b] = hit
			for _, s := range hit {
				blockOf[s] = b
			}
			nb := addBlock(rest)
			// Update the worklist per Hopcroft: if (b,sym) pending, add
			// (nb,sym) too; otherwise add the smaller of the two.
			for sym := 0; sym < nsym; sym++ {
				if inWork[splitter{b, Symbol(sym)}] {
					push(nb, Symbol(sym))
				} else if len(hit) <= len(rest) {
					push(b, Symbol(sym))
				} else {
					push(nb, Symbol(sym))
				}
			}
		}
	}

	// Build quotient machine, then renumber canonically via BFS.
	q := NewDFA(d.Alpha, len(blocks), State(blockOf[d.Start]))
	for b, states := range blocks {
		s0 := states[0]
		q.Accept[b] = d.Accept[s0]
		for sym := 0; sym < nsym; sym++ {
			q.Delta[b][sym] = State(blockOf[d.Delta[s0][sym]])
		}
	}
	return canonicalize(q)
}

// canonicalize renumbers a total DFA's states in BFS order from the start
// state (symbols in interning order), dropping unreachable states.
func canonicalize(d *DFA) *DFA {
	order := make([]State, 0, d.NumStates)
	remap := make([]State, d.NumStates)
	for i := range remap {
		remap[i] = None
	}
	remap[d.Start] = 0
	order = append(order, d.Start)
	for i := 0; i < len(order); i++ {
		s := order[i]
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None && remap[t] == None {
				remap[t] = State(len(order))
				order = append(order, t)
			}
		}
	}
	out := NewDFA(d.Alpha, len(order), 0)
	for i, s := range order {
		out.Accept[i] = d.Accept[s]
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None {
				out.Delta[i][sym] = remap[t]
			}
		}
	}
	return out
}

// Equivalent reports whether two total (or completable) DFAs over the same
// alphabet accept the same language, by checking isomorphism of their
// minimized, canonicalized forms.
func Equivalent(a, b *DFA) bool {
	if a.Alpha != b.Alpha {
		return false
	}
	ma, mb := Minimize(a), Minimize(b)
	if ma.NumStates != mb.NumStates || ma.Start != mb.Start {
		return false
	}
	for s := 0; s < ma.NumStates; s++ {
		if ma.Accept[s] != mb.Accept[s] {
			return false
		}
		for sym := 0; sym < ma.Alpha.Size(); sym++ {
			if ma.Delta[s][sym] != mb.Delta[s][sym] {
				return false
			}
		}
	}
	return true
}
