package dfa

import (
	"fmt"
	"strings"
)

// State is a state of a DFA or NFA, numbered from 0.
type State int

// None marks the absence of a state (a missing transition in a partial DFA).
const None State = -1

// DFA is a deterministic finite automaton. The transition function is
// total unless a transition is None; Complete fills missing transitions
// with a dead state. States are 0..NumStates-1.
type DFA struct {
	Alpha     *Alphabet
	NumStates int
	Start     State
	Accept    []bool    // len NumStates
	Delta     [][]State // [state][symbol]; len NumStates x Alpha.Size()
	// StateName optionally names states for diagnostics; may be nil.
	StateName []string
}

// NewDFA returns a DFA with n states over alpha, with all transitions
// missing (None) and no accept states.
func NewDFA(alpha *Alphabet, n int, start State) *DFA {
	d := &DFA{
		Alpha:     alpha,
		NumStates: n,
		Start:     start,
		Accept:    make([]bool, n),
		Delta:     make([][]State, n),
	}
	for i := range d.Delta {
		row := make([]State, alpha.Size())
		for j := range row {
			row[j] = None
		}
		d.Delta[i] = row
	}
	return d
}

// SetTransition sets delta(from, sym) = to.
func (d *DFA) SetTransition(from State, sym Symbol, to State) {
	d.Delta[from][sym] = to
}

// SetAccept marks s as accepting.
func (d *DFA) SetAccept(s State) { d.Accept[s] = true }

// IsTotal reports whether every transition is defined.
func (d *DFA) IsTotal() bool {
	for _, row := range d.Delta {
		for _, t := range row {
			if t == None {
				return false
			}
		}
	}
	return true
}

// Complete returns a total DFA accepting the same language. If d is already
// total it is returned unchanged; otherwise a dead state is appended and
// all missing transitions point to it.
func (d *DFA) Complete() *DFA {
	if d.IsTotal() {
		return d
	}
	n := d.NumStates
	out := NewDFA(d.Alpha, n+1, d.Start)
	copy(out.Accept, d.Accept)
	for s := 0; s < n; s++ {
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t == None {
				t = State(n)
			}
			out.Delta[s][sym] = t
		}
	}
	for sym := 0; sym < d.Alpha.Size(); sym++ {
		out.Delta[n][sym] = State(n)
	}
	if d.StateName != nil {
		out.StateName = append(append([]string{}, d.StateName...), "⊥")
	}
	return out
}

// CompleteSelfLoop returns a total DFA in which every missing transition is
// a self loop. This is the default-stuttering semantics used by the
// annotation specification language: symbols not mentioned in a state leave
// the state unchanged.
func (d *DFA) CompleteSelfLoop() *DFA {
	out := NewDFA(d.Alpha, d.NumStates, d.Start)
	copy(out.Accept, d.Accept)
	if d.StateName != nil {
		out.StateName = append([]string{}, d.StateName...)
	}
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t == None {
				t = State(s)
			}
			out.Delta[s][sym] = t
		}
	}
	return out
}

// Step returns delta(s, sym), or None if the transition is missing.
func (d *DFA) Step(s State, sym Symbol) State {
	if s == None {
		return None
	}
	return d.Delta[s][sym]
}

// Run returns the state reached from s on the given word, or None if the
// run dies.
func (d *DFA) Run(s State, word []Symbol) State {
	for _, sym := range word {
		s = d.Step(s, sym)
		if s == None {
			return None
		}
	}
	return s
}

// Accepts reports whether the DFA accepts the word from the start state.
func (d *DFA) Accepts(word []Symbol) bool {
	s := d.Run(d.Start, word)
	return s != None && d.Accept[s]
}

// AcceptsNames is Accepts on symbol names; unknown names are rejected.
func (d *DFA) AcceptsNames(names ...string) bool {
	word := make([]Symbol, 0, len(names))
	for _, n := range names {
		s, ok := d.Alpha.Lookup(n)
		if !ok {
			return false
		}
		word = append(word, s)
	}
	return d.Accepts(word)
}

// AcceptStates returns the accepting states in increasing order.
func (d *DFA) AcceptStates() []State {
	var out []State
	for s, a := range d.Accept {
		if a {
			out = append(out, State(s))
		}
	}
	return out
}

// HasAccept reports whether the DFA has at least one accepting state.
func (d *DFA) HasAccept() bool {
	for _, a := range d.Accept {
		if a {
			return true
		}
	}
	return false
}

// Reachable returns the set of states reachable from the start state.
func (d *DFA) Reachable() []bool {
	seen := make([]bool, d.NumStates)
	stack := []State{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// CoReachable returns the set of states from which some accepting state is
// reachable.
func (d *DFA) CoReachable() []bool {
	// Build reverse adjacency.
	rev := make([][]State, d.NumStates)
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None {
				rev[t] = append(rev[t], State(s))
			}
		}
	}
	seen := make([]bool, d.NumStates)
	var stack []State
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			seen[s] = true
			stack = append(stack, State(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Trim returns an equivalent partial DFA containing only states that are
// both reachable and co-reachable ("useful"). If the start state is not
// useful the result is a one-state machine accepting nothing.
func (d *DFA) Trim() *DFA {
	reach := d.Reachable()
	co := d.CoReachable()
	remap := make([]State, d.NumStates)
	n := 0
	for s := 0; s < d.NumStates; s++ {
		if reach[s] && co[s] {
			remap[s] = State(n)
			n++
		} else {
			remap[s] = None
		}
	}
	if n == 0 || remap[d.Start] == None {
		out := NewDFA(d.Alpha, 1, 0)
		return out
	}
	out := NewDFA(d.Alpha, n, remap[d.Start])
	if d.StateName != nil {
		out.StateName = make([]string, n)
	}
	for s := 0; s < d.NumStates; s++ {
		ns := remap[s]
		if ns == None {
			continue
		}
		out.Accept[ns] = d.Accept[s]
		if d.StateName != nil {
			out.StateName[ns] = d.StateName[s]
		}
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None && remap[t] != None {
				out.Delta[ns][sym] = remap[t]
			}
		}
	}
	return out
}

// Clone returns a deep copy of d.
func (d *DFA) Clone() *DFA {
	out := NewDFA(d.Alpha, d.NumStates, d.Start)
	copy(out.Accept, d.Accept)
	for i := range d.Delta {
		copy(out.Delta[i], d.Delta[i])
	}
	if d.StateName != nil {
		out.StateName = append([]string{}, d.StateName...)
	}
	return out
}

// NameOf returns a printable name for state s.
func (d *DFA) NameOf(s State) string {
	if s == None {
		return "∅"
	}
	if d.StateName != nil && int(s) < len(d.StateName) && d.StateName[s] != "" {
		return d.StateName[s]
	}
	return fmt.Sprintf("q%d", int(s))
}

// String renders the machine as a transition table for diagnostics.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA(states=%d, start=%s, accept={", d.NumStates, d.NameOf(d.Start))
	first := true
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			if !first {
				b.WriteString(",")
			}
			b.WriteString(d.NameOf(State(s)))
			first = false
		}
	}
	b.WriteString("})\n")
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t != None {
				fmt.Fprintf(&b, "  %s --%s--> %s\n", d.NameOf(State(s)), d.Alpha.Name(Symbol(sym)), d.NameOf(t))
			}
		}
	}
	return b.String()
}

// Validate checks internal consistency and returns an error describing the
// first problem found.
func (d *DFA) Validate() error {
	if d.Alpha == nil {
		return fmt.Errorf("dfa: nil alphabet")
	}
	if d.NumStates <= 0 {
		return fmt.Errorf("dfa: no states")
	}
	if d.Start < 0 || int(d.Start) >= d.NumStates {
		return fmt.Errorf("dfa: start state %d out of range", d.Start)
	}
	if len(d.Accept) != d.NumStates || len(d.Delta) != d.NumStates {
		return fmt.Errorf("dfa: table sizes disagree with NumStates=%d", d.NumStates)
	}
	for s, row := range d.Delta {
		if len(row) != d.Alpha.Size() {
			return fmt.Errorf("dfa: state %d has %d transitions, want %d", s, len(row), d.Alpha.Size())
		}
		for sym, t := range row {
			if t != None && (t < 0 || int(t) >= d.NumStates) {
				return fmt.Errorf("dfa: delta(%d,%s)=%d out of range", s, d.Alpha.Name(Symbol(sym)), t)
			}
		}
	}
	return nil
}
