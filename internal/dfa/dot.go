package dfa

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the machine in Graphviz dot format: accepting states are
// doublecircles, the start state is marked with an entry arrow, and
// parallel transitions between the same pair of states are folded into
// one comma-separated edge label.
func (d *DFA) DOT(name string) string {
	var b strings.Builder
	if name == "" {
		name = "M"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> n%d;\n", int(d.Start))
	for s := 0; s < d.NumStates; s++ {
		shape := "circle"
		if d.Accept[s] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", s, d.NameOf(State(s)), shape)
	}
	// Fold parallel edges.
	type pair struct{ from, to State }
	labels := map[pair][]string{}
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			t := d.Delta[s][sym]
			if t == None {
				continue
			}
			p := pair{State(s), t}
			labels[p] = append(labels[p], d.Alpha.Name(Symbol(sym)))
		}
	}
	var pairs []pair
	for p := range labels {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	for _, p := range pairs {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n",
			int(p.from), int(p.to), strings.Join(labels[p], ","))
	}
	b.WriteString("}\n")
	return b.String()
}
