package dfa

// This file builds the derived machines of §2.3 and §5 of the paper:
//
//   M^sub — accepts all substrings of words in L(M); the bidirectional
//           solver works over the annotated domain T^{M^sub}.
//   M^pre — accepts all prefixes of words in L(M); the forward solver works
//           over T^{M^pre}.
//   M^suf — accepts all suffixes; the backward solver's domain.
//
// All three constructions start from the trimmed machine (useful states
// only) so that every partial word really extends to a word in L(M).

// PrefixMachine returns the minimal DFA accepting prefixes of L(M):
// {w | ∃y. wy ∈ L(M)}. A prefix is a word whose run stays within
// co-reachable states, so the construction marks every useful state
// accepting in the trimmed machine.
func PrefixMachine(m *DFA) *DFA {
	t := m.Trim()
	if !t.HasAccept() {
		return Minimize(t)
	}
	out := t.Clone()
	for s := 0; s < out.NumStates; s++ {
		out.Accept[s] = true
	}
	return Minimize(out)
}

// SuffixMachine returns the minimal DFA accepting suffixes of L(M):
// {w | ∃x. xw ∈ L(M)}. Construction: NFA whose start set is every
// reachable state of the trimmed machine, determinized and minimized.
func SuffixMachine(m *DFA) *DFA {
	t := m.Trim()
	if !t.HasAccept() {
		return Minimize(t)
	}
	n := FromDFA(t)
	n.Start = nil
	for s := 0; s < t.NumStates; s++ {
		n.AddStart(State(s))
	}
	return Minimize(n.Determinize())
}

// SubstringMachine returns the minimal DFA accepting substrings of L(M):
// {w | ∃x,y. xwy ∈ L(M)}. Construction: NFA over the trimmed (useful)
// machine with every state both initial and accepting.
func SubstringMachine(m *DFA) *DFA {
	t := m.Trim()
	if !t.HasAccept() {
		return Minimize(t)
	}
	n := FromDFA(t)
	n.Start = nil
	for s := 0; s < t.NumStates; s++ {
		n.AddStart(State(s))
		n.SetAccept(State(s))
	}
	return Minimize(n.Determinize())
}
