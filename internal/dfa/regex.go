package dfa

import (
	"fmt"
	"strings"
)

// CompileRegex builds the minimal DFA for a regular expression over
// whitespace-separated symbol names. Supported syntax:
//
//	a b        concatenation (juxtaposition)
//	a | b      alternation
//	a*  a+  a? repetition
//	( ... )    grouping
//	.          any symbol of the alphabet
//	ε (or "eps") the empty word
//
// Symbol names are identifiers ([A-Za-z0-9_]+) and may be multi-character
// ("seteuid_zero k1 | execl*"). If alpha is nil a fresh alphabet is
// created from the mentioned symbols; otherwise names are interned into
// alpha ('.' requires a non-empty alphabet).
//
// The construction is Thompson's (regex → ε-NFA), followed by the subset
// construction and Hopcroft minimization.
func CompileRegex(expr string, alpha *Alphabet) (*DFA, error) {
	if alpha == nil {
		alpha = &Alphabet{}
	}
	toks, err := lexRegex(expr)
	if err != nil {
		return nil, err
	}
	p := &regexParser{toks: toks, alpha: alpha}
	ast, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("dfa: regex: unexpected %q", p.toks[p.pos])
	}
	// '.' needs the final alphabet, so build the NFA after parsing.
	b := &thompson{nfa: NewNFA(alpha, 0), alpha: alpha}
	frag, err := b.build(ast)
	if err != nil {
		return nil, err
	}
	b.nfa.AddStart(frag.start)
	b.nfa.SetAccept(frag.accept)
	return Minimize(b.nfa.Determinize()), nil
}

// MustCompileRegex panics on error.
func MustCompileRegex(expr string, alpha *Alphabet) *DFA {
	d, err := CompileRegex(expr, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

// --- lexing ---------------------------------------------------------------

func lexRegex(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '|' || c == '*' || c == '+' || c == '?' || c == '.':
			out = append(out, string(c))
			i++
		case strings.HasPrefix(s[i:], "ε"):
			out = append(out, "ε")
			i += len("ε")
		case isRegexIdent(c):
			j := i
			for j < len(s) && isRegexIdent(s[j]) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("dfa: regex: unexpected character %q", string(c))
		}
	}
	return out, nil
}

func isRegexIdent(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// --- parsing to a small AST -------------------------------------------------

type reNode struct {
	kind reKind
	sym  string
	kids []*reNode
}

type reKind int

const (
	reSym reKind = iota
	reAny
	reEps
	reCat
	reAlt
	reStar
	rePlus
	reOpt
)

type regexParser struct {
	toks  []string
	pos   int
	alpha *Alphabet
}

func (p *regexParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *regexParser) alt() (*reNode, error) {
	left, err := p.concat()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.pos++
		right, err := p.concat()
		if err != nil {
			return nil, err
		}
		left = &reNode{kind: reAlt, kids: []*reNode{left, right}}
	}
	return left, nil
}

func (p *regexParser) concat() (*reNode, error) {
	var parts []*reNode
	for {
		t := p.peek()
		if t == "" || t == ")" || t == "|" {
			break
		}
		part, err := p.rep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	if len(parts) == 0 {
		// Implicitly-empty branches are almost always mistakes; the
		// empty word must be written explicitly as ε (or "eps").
		return nil, fmt.Errorf("dfa: regex: empty (sub)expression; write ε for the empty word")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &reNode{kind: reCat, kids: parts}, nil
}

func (p *regexParser) rep() (*reNode, error) {
	prim, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "*":
			p.pos++
			prim = &reNode{kind: reStar, kids: []*reNode{prim}}
		case "+":
			p.pos++
			prim = &reNode{kind: rePlus, kids: []*reNode{prim}}
		case "?":
			p.pos++
			prim = &reNode{kind: reOpt, kids: []*reNode{prim}}
		default:
			return prim, nil
		}
	}
}

func (p *regexParser) primary() (*reNode, error) {
	t := p.peek()
	switch t {
	case "":
		return nil, fmt.Errorf("dfa: regex: unexpected end of expression")
	case "(":
		p.pos++
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("dfa: regex: missing ')'")
		}
		p.pos++
		return inner, nil
	case ".":
		p.pos++
		return &reNode{kind: reAny}, nil
	case "ε", "eps":
		p.pos++
		return &reNode{kind: reEps}, nil
	case ")", "|", "*", "+", "?":
		return nil, fmt.Errorf("dfa: regex: unexpected %q", t)
	default:
		p.pos++
		p.alpha.Intern(t)
		return &reNode{kind: reSym, sym: t}, nil
	}
}

// --- Thompson construction ---------------------------------------------------

type frag struct {
	start, accept State
}

type thompson struct {
	nfa   *NFA
	alpha *Alphabet
}

func (b *thompson) state() State {
	s := State(b.nfa.NumStates)
	b.nfa.NumStates++
	b.nfa.Accept = append(b.nfa.Accept, false)
	b.nfa.Trans = append(b.nfa.Trans, make([][]State, b.alpha.Size()))
	b.nfa.Eps = append(b.nfa.Eps, nil)
	return s
}

func (b *thompson) build(n *reNode) (frag, error) {
	switch n.kind {
	case reSym:
		s, a := b.state(), b.state()
		sym, _ := b.alpha.Lookup(n.sym)
		b.nfa.AddTransition(s, sym, a)
		return frag{s, a}, nil
	case reAny:
		if b.alpha.Size() == 0 {
			return frag{}, fmt.Errorf("dfa: regex: '.' with an empty alphabet")
		}
		s, a := b.state(), b.state()
		for sym := 0; sym < b.alpha.Size(); sym++ {
			b.nfa.AddTransition(s, Symbol(sym), a)
		}
		return frag{s, a}, nil
	case reEps:
		s, a := b.state(), b.state()
		b.nfa.AddEps(s, a)
		return frag{s, a}, nil
	case reCat:
		cur, err := b.build(n.kids[0])
		if err != nil {
			return frag{}, err
		}
		for _, k := range n.kids[1:] {
			next, err := b.build(k)
			if err != nil {
				return frag{}, err
			}
			b.nfa.AddEps(cur.accept, next.start)
			cur = frag{cur.start, next.accept}
		}
		return cur, nil
	case reAlt:
		l, err := b.build(n.kids[0])
		if err != nil {
			return frag{}, err
		}
		r, err := b.build(n.kids[1])
		if err != nil {
			return frag{}, err
		}
		s, a := b.state(), b.state()
		b.nfa.AddEps(s, l.start)
		b.nfa.AddEps(s, r.start)
		b.nfa.AddEps(l.accept, a)
		b.nfa.AddEps(r.accept, a)
		return frag{s, a}, nil
	case reStar:
		inner, err := b.build(n.kids[0])
		if err != nil {
			return frag{}, err
		}
		s, a := b.state(), b.state()
		b.nfa.AddEps(s, a)
		b.nfa.AddEps(s, inner.start)
		b.nfa.AddEps(inner.accept, inner.start)
		b.nfa.AddEps(inner.accept, a)
		return frag{s, a}, nil
	case rePlus:
		inner, err := b.build(n.kids[0])
		if err != nil {
			return frag{}, err
		}
		s, a := b.state(), b.state()
		b.nfa.AddEps(s, inner.start)
		b.nfa.AddEps(inner.accept, inner.start)
		b.nfa.AddEps(inner.accept, a)
		return frag{s, a}, nil
	case reOpt:
		inner, err := b.build(n.kids[0])
		if err != nil {
			return frag{}, err
		}
		s, a := b.state(), b.state()
		b.nfa.AddEps(s, a)
		b.nfa.AddEps(s, inner.start)
		b.nfa.AddEps(inner.accept, a)
		return frag{s, a}, nil
	}
	return frag{}, fmt.Errorf("dfa: regex: internal error (kind %d)", n.kind)
}
