package dfa

import (
	"sort"
	"strconv"
	"strings"
)

// NFA is a nondeterministic finite automaton with epsilon transitions and a
// set of start states. It exists chiefly as an intermediate form for the
// derived machines (substring, suffix) and for the subset construction.
type NFA struct {
	Alpha     *Alphabet
	NumStates int
	Start     []State
	Accept    []bool
	// Trans[state][symbol] is the list of successor states.
	Trans [][][]State
	// Eps[state] is the list of epsilon-successors.
	Eps [][]State
}

// NewNFA returns an NFA with n states over alpha and no transitions.
func NewNFA(alpha *Alphabet, n int) *NFA {
	nf := &NFA{
		Alpha:     alpha,
		NumStates: n,
		Accept:    make([]bool, n),
		Trans:     make([][][]State, n),
		Eps:       make([][]State, n),
	}
	for i := range nf.Trans {
		nf.Trans[i] = make([][]State, alpha.Size())
	}
	return nf
}

// AddStart adds a start state.
func (n *NFA) AddStart(s State) { n.Start = append(n.Start, s) }

// AddTransition adds from --sym--> to.
func (n *NFA) AddTransition(from State, sym Symbol, to State) {
	n.Trans[from][sym] = append(n.Trans[from][sym], to)
}

// AddEps adds an epsilon transition from --ε--> to.
func (n *NFA) AddEps(from, to State) {
	n.Eps[from] = append(n.Eps[from], to)
}

// SetAccept marks s accepting.
func (n *NFA) SetAccept(s State) { n.Accept[s] = true }

// epsClosure extends set (a sorted slice of states, mutated) with all
// epsilon-reachable states and returns the closure sorted and deduplicated.
func (n *NFA) epsClosure(set []State) []State {
	seen := make(map[State]bool, len(set))
	stack := make([]State, 0, len(set))
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	out := make([]State, 0, len(stack))
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for _, t := range n.Eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func stateSetKey(set []State) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// Determinize performs the subset construction and returns an equivalent
// total DFA. The empty subset becomes an explicit dead state when needed.
func (n *NFA) Determinize() *DFA {
	index := make(map[string]State)
	var sets [][]State

	intern := func(set []State) State {
		key := stateSetKey(set)
		if id, ok := index[key]; ok {
			return id
		}
		id := State(len(sets))
		index[key] = id
		sets = append(sets, set)
		return id
	}

	start := intern(n.epsClosure(append([]State{}, n.Start...)))

	type trans struct {
		from State
		sym  Symbol
		to   State
	}
	var transitions []trans
	processed := 0
	for processed < len(sets) {
		cur := sets[processed]
		curID := State(processed)
		processed++
		for sym := 0; sym < n.Alpha.Size(); sym++ {
			var next []State
			seen := map[State]bool{}
			for _, s := range cur {
				for _, t := range n.Trans[s][Symbol(sym)] {
					if !seen[t] {
						seen[t] = true
						next = append(next, t)
					}
				}
			}
			next = n.epsClosure(next)
			id := intern(next)
			transitions = append(transitions, trans{curID, Symbol(sym), id})
		}
	}

	d := NewDFA(n.Alpha, len(sets), start)
	for id, set := range sets {
		for _, s := range set {
			if n.Accept[s] {
				d.Accept[id] = true
				break
			}
		}
	}
	for _, t := range transitions {
		d.Delta[t.from][t.sym] = t.to
	}
	return d
}

// FromDFA returns an NFA with the same states and transitions as d
// (missing transitions omitted), preserving start and accept states.
func FromDFA(d *DFA) *NFA {
	n := NewNFA(d.Alpha, d.NumStates)
	n.AddStart(d.Start)
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			n.SetAccept(State(s))
		}
		for sym := 0; sym < d.Alpha.Size(); sym++ {
			if t := d.Delta[s][sym]; t != None {
				n.AddTransition(State(s), Symbol(sym), t)
			}
		}
	}
	return n
}
