package dfa

// productOp combines accept flags of component states.
type productOp func(a, b bool) bool

// product builds the synchronous product of two total DFAs over the same
// alphabet, restricted to reachable pairs.
func product(a, b *DFA, op productOp) *DFA {
	d, _ := productPairs(a, b, op)
	return d
}

// productPairs is product plus the provenance of every product state: the
// second return value maps each state of the result to its (a, b)
// component pair. The spec package uses this to propagate "saturated"
// pair valuations through chained counter/relation-tracker folds.
func productPairs(a, b *DFA, op productOp) (*DFA, [][2]State) {
	if a.Alpha != b.Alpha {
		panic("dfa: product over different alphabets")
	}
	a, b = a.Complete(), b.Complete()
	type pair struct{ x, y State }
	index := map[pair]State{}
	var pairs []pair
	intern := func(p pair) State {
		if id, ok := index[p]; ok {
			return id
		}
		id := State(len(pairs))
		index[p] = id
		pairs = append(pairs, p)
		return id
	}
	start := intern(pair{a.Start, b.Start})
	type trans struct {
		from State
		sym  Symbol
		to   State
	}
	var transitions []trans
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		for sym := 0; sym < a.Alpha.Size(); sym++ {
			np := pair{a.Delta[p.x][sym], b.Delta[p.y][sym]}
			transitions = append(transitions, trans{State(i), Symbol(sym), intern(np)})
		}
	}
	d := NewDFA(a.Alpha, len(pairs), start)
	for id, p := range pairs {
		d.Accept[id] = op(a.Accept[p.x], b.Accept[p.y])
	}
	for _, t := range transitions {
		d.Delta[t.from][t.sym] = t.to
	}
	// Compose state names so diagnostics through a product machine stay
	// readable — the counter-expanded machines of the spec package rely
	// on this to show "State·c=2" valuations in witnesses. NameOf supplies
	// a positional fallback when only one side carries names, so pair
	// valuations survive products with anonymous machines too.
	if a.StateName != nil || b.StateName != nil {
		d.StateName = make([]string, len(pairs))
		for id, p := range pairs {
			d.StateName[id] = a.NameOf(p.x) + "·" + b.NameOf(p.y)
		}
	}
	out := make([][2]State, len(pairs))
	for id, p := range pairs {
		out[id] = [2]State{p.x, p.y}
	}
	return d, out
}

// UnionPairs is Union plus per-state component provenance (see
// productPairs).
func UnionPairs(a, b *DFA) (*DFA, [][2]State) {
	return productPairs(a, b, func(x, y bool) bool { return x || y })
}

// Intersect returns a DFA for L(a) ∩ L(b). Both machines must share an
// alphabet. The paper (§2.2) deals with a single machine representing the
// product of all regular reachability properties; Intersect (and
// ProductAll) build that machine.
func Intersect(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a DFA for L(a) ∪ L(b).
func Union(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x || y })
}

// ProductAll intersects all machines (which must share an alphabet),
// minimizing after each step. With no arguments it returns nil.
func ProductAll(machines ...*DFA) *DFA {
	if len(machines) == 0 {
		return nil
	}
	cur := Minimize(machines[0])
	for _, m := range machines[1:] {
		cur = Minimize(Intersect(cur, m))
	}
	return cur
}

// Complement returns a DFA for the complement of L(d) (over d's alphabet).
func Complement(d *DFA) *DFA {
	c := d.Complete().Clone()
	for s := range c.Accept {
		c.Accept[s] = !c.Accept[s]
	}
	return c
}

// Empty reports whether L(d) is empty.
func Empty(d *DFA) bool {
	reach := d.Reachable()
	for s, r := range reach {
		if r && d.Accept[s] {
			return false
		}
	}
	return true
}
