package dfa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegexBasics(t *testing.T) {
	cases := []struct {
		expr   string
		accept [][]string
		reject [][]string
	}{
		{"a", [][]string{{"a"}}, [][]string{{}, {"a", "a"}}},
		{"a b", [][]string{{"a", "b"}}, [][]string{{"a"}, {"b", "a"}}},
		{"a | b", [][]string{{"a"}, {"b"}}, [][]string{{}, {"a", "b"}}},
		{"a*", [][]string{{}, {"a"}, {"a", "a", "a"}}, [][]string{{"b"}}},
		{"a+", [][]string{{"a"}, {"a", "a"}}, [][]string{{}}},
		{"a?", [][]string{{}, {"a"}}, [][]string{{"a", "a"}}},
		{"(a | b)* a", [][]string{{"a"}, {"b", "a"}, {"a", "b", "a"}}, [][]string{{}, {"b"}, {"a", "b"}}},
		{"g (k g)*", [][]string{{"g"}, {"g", "k", "g"}}, [][]string{{}, {"g", "k"}, {"k", "g"}}},
		{"ε", [][]string{{}}, [][]string{{"x"}}},
		{"eps | a", [][]string{{}, {"a"}}, [][]string{{"a", "a"}}},
	}
	for _, c := range cases {
		d, err := CompileRegex(c.expr, nil)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		for _, w := range c.accept {
			if !d.AcceptsNames(w...) {
				t.Errorf("%q should accept %v", c.expr, w)
			}
		}
		for _, w := range c.reject {
			if d.AcceptsNames(w...) {
				t.Errorf("%q should reject %v", c.expr, w)
			}
		}
	}
}

func TestRegexMultiCharSymbols(t *testing.T) {
	d := MustCompileRegex("seteuid_zero execl", nil)
	if !d.AcceptsNames("seteuid_zero", "execl") {
		t.Error("multi-character symbols should work")
	}
	if d.AcceptsNames("seteuid_zero") {
		t.Error("prefix must not accept")
	}
}

func TestRegexAny(t *testing.T) {
	alpha := NewAlphabet("a", "b", "c")
	d := MustCompileRegex(". .", alpha)
	if !d.AcceptsNames("a", "c") || !d.AcceptsNames("b", "b") {
		t.Error("dot should match any symbol")
	}
	if d.AcceptsNames("a") {
		t.Error("length must be two")
	}
	// '.' with no alphabet at all is an error.
	if _, err := CompileRegex(".", nil); err == nil {
		t.Error("dot over empty alphabet should error")
	}
}

func TestRegexErrors(t *testing.T) {
	for _, expr := range []string{"(a", "a)", "|", "*", "a | | b", "a $"} {
		if _, err := CompileRegex(expr, nil); err == nil {
			t.Errorf("%q should fail to compile", expr)
		}
	}
}

func TestRegexMinimality(t *testing.T) {
	// (a|b)* a has a known 2-state minimal DFA.
	d := MustCompileRegex("(a | b)* a", nil)
	if d.NumStates > 3 { // 2 live + possibly a dead completion state
		t.Errorf("machine has %d states, expected minimal", d.NumStates)
	}
}

// Property: the regex machine agrees with a reference matcher on random
// words for a fixed expression set.
func TestQuickRegexAgainstReference(t *testing.T) {
	// Reference: (ab)* matched by counting.
	d := MustCompileRegex("(a b)*", nil)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8)
		var w []string
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				w = append(w, "a")
			} else {
				w = append(w, "b")
			}
		}
		want := len(w)%2 == 0 && strings.Join(w, "") == strings.Repeat("ab", len(w)/2)
		return d.AcceptsNames(w...) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
