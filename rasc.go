// Package rasc is a Go implementation of regularly annotated set
// constraints (Kodumal and Aiken, PLDI 2007): the cubic fragment of set
// constraints extended with annotations drawn from a regular language,
// expressing program analyses that combine one context-free and any
// number of regular reachability properties.
//
// The facade re-exports the toolkit's main entry points; the
// implementation lives under internal/:
//
//	internal/dfa        automata (subset construction, Hopcroft, products,
//	                    prefix/suffix/substring machines)
//	internal/monoid     representative functions F_M^≡ with composition
//	                    tables, right/left congruences
//	internal/spec       the annotation specification language of §8
//	internal/subst      substitution environments (parametric annotations)
//	internal/terms      hash-consed annotated terms
//	internal/core       the constraint solver: bidirectional (online),
//	                    forward and backward strategies; entailment, PN
//	                    reachability and term-enumeration queries
//	internal/minic      mini-C frontend for the model checker
//	internal/pdm        pushdown model checking (§6)
//	internal/mops       baseline post* pushdown checker (Table 1 foil)
//	internal/flow       type-based flow analysis (§7) and its dual
//	internal/bitvector  gen/kill dataflow (§3.3) + iterative baseline
//	internal/synth      synthetic workloads for the §8 experiments
//	internal/clang      textual constraint language (cmd/rasc)
//
// Quick start (see examples/quickstart):
//
//	prop := rasc.MustCompileSpec(`
//	    start state Off : | g -> On;
//	    accept state On : | k -> Off;
//	`)
//	sig := rasc.NewSignature()
//	c := sig.MustDeclare("c", 0)
//	sys := rasc.NewSystem(rasc.FuncAlgebra{Mon: prop.Mon}, sig, rasc.Options{})
//	x, y := sys.Var("X"), sys.Var("Y")
//	g, _ := prop.Mon.SymbolFuncByName("g")
//	sys.AddLower(sys.Constant(c), x, rasc.Annot(g))
//	sys.AddVarE(x, y)
//	sys.Solve()
//	sys.ConstEntailed(sys.Constant(c), y) // true: word "g" is accepted
package rasc

import (
	"rasc/internal/core"
	"rasc/internal/dfa"
	"rasc/internal/monoid"
	"rasc/internal/spec"
	"rasc/internal/subst"
	"rasc/internal/terms"
)

// Core solver API (see internal/core).
type (
	// System is a system of regularly annotated set constraints plus the
	// bidirectional solver's state.
	System = core.System
	// Options configures solver optimizations.
	Options = core.Options
	// Annot is an interned annotation (a representative function or a
	// substitution environment, per the system's Algebra).
	Annot = core.Annot
	// Algebra abstracts the annotation domain.
	Algebra = core.Algebra
	// FuncAlgebra annotates with representative functions.
	FuncAlgebra = core.FuncAlgebra
	// EnvAlgebra annotates with substitution environments (§6.4).
	EnvAlgebra = core.EnvAlgebra
	// TrivialAlgebra degrades the solver to plain set constraints.
	TrivialAlgebra = core.TrivialAlgebra
	// VarID identifies a set variable.
	VarID = core.VarID
	// CNode identifies a constructor expression.
	CNode = core.CNode
	// Clash is a manifestly inconsistent constraint.
	Clash = core.Clash
	// PNResult is a positive-negative reachability query result.
	PNResult = core.PNResult
)

// Automata and monoids.
type (
	// DFA is a deterministic finite automaton.
	DFA = dfa.DFA
	// Alphabet interns symbol names.
	Alphabet = dfa.Alphabet
	// Monoid is a transition monoid F_M^≡ with its composition table.
	Monoid = monoid.Monoid
	// FuncID is a representative function.
	FuncID = monoid.FuncID
)

// Specifications and terms.
type (
	// Property is a compiled annotation specification.
	Property = spec.Property
	// Signature interns constructors.
	Signature = terms.Signature
	// Bank hash-conses annotated ground terms.
	Bank = terms.Bank
	// SubstTable interns substitution environments.
	SubstTable = subst.Table
)

// NewSystem returns an empty constraint system.
func NewSystem(alg Algebra, sig *Signature, opts Options) *System {
	return core.NewSystem(alg, sig, opts)
}

// NewSignature returns an empty constructor signature.
func NewSignature() *Signature { return terms.NewSignature() }

// NewBank returns an empty term bank over sig.
func NewBank(sig *Signature) *Bank { return terms.NewBank(sig) }

// CompileSpec compiles an annotation specification (§8 syntax) into a
// Property: the automaton plus its representative functions.
func CompileSpec(src string) (*Property, error) {
	return spec.Compile(src, spec.Options{})
}

// MustCompileSpec panics on error.
func MustCompileSpec(src string) *Property { return spec.MustCompile(src) }

// BuildMonoid computes F_M^≡ for a machine; limit <= 0 uses the default
// cap.
func BuildMonoid(m *DFA, limit int) (*Monoid, error) { return monoid.Build(m, limit) }

// NewSubstTable returns an empty substitution-environment table for
// parametric annotations.
func NewSubstTable(mon *Monoid) *SubstTable { return subst.NewTable(mon) }

// Derived machines (§2.3, §5).
var (
	// SubstringMachine accepts substrings of L(M): the bidirectional
	// solving domain.
	SubstringMachine = dfa.SubstringMachine
	// PrefixMachine accepts prefixes: the forward domain.
	PrefixMachine = dfa.PrefixMachine
	// SuffixMachine accepts suffixes: the backward domain.
	SuffixMachine = dfa.SuffixMachine
	// Minimize returns the minimal DFA (Hopcroft).
	Minimize = dfa.Minimize
)
