package rasc_test

import (
	"testing"

	"rasc"
)

// The README quick start, as a test against the facade.
func TestQuickStartFacade(t *testing.T) {
	prop := rasc.MustCompileSpec(`
start state Off : | g -> On;
accept state On : | k -> Off;
`)
	sig := rasc.NewSignature()
	c := sig.MustDeclare("c", 0)

	sys := rasc.NewSystem(rasc.FuncAlgebra{Mon: prop.Mon}, sig, rasc.Options{})
	x, y := sys.Var("X"), sys.Var("Y")
	g, _ := prop.Mon.SymbolFuncByName("g")

	sys.AddLower(sys.Constant(c), x, rasc.Annot(g))
	sys.AddVarE(x, y)
	sys.Solve()

	if !sys.ConstEntailed(sys.Constant(c), y) {
		t.Error("quick start flow lost")
	}
}

func TestFacadeDerivedMachines(t *testing.T) {
	prop := rasc.MustCompileSpec(`
start state A : | a -> B;
accept state B;
`)
	sub := rasc.SubstringMachine(prop.Machine)
	if !sub.AcceptsNames() || !sub.AcceptsNames("a") {
		t.Error("substring machine wrong")
	}
	pre := rasc.PrefixMachine(prop.Machine)
	if !pre.AcceptsNames() {
		t.Error("prefix machine wrong")
	}
	suf := rasc.SuffixMachine(prop.Machine)
	if !suf.AcceptsNames("a") {
		t.Error("suffix machine wrong")
	}
	if m := rasc.Minimize(prop.Machine); m.NumStates == 0 {
		t.Error("minimize broke")
	}
}

func TestFacadeMonoidAndSubst(t *testing.T) {
	prop := rasc.MustCompileSpec(`
start state Closed : | open(x) -> Opened;
accept state Opened : | close(x) -> Closed;
`)
	mon, err := rasc.BuildMonoid(prop.Machine, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := rasc.NewSubstTable(mon)
	fOpen, _ := mon.SymbolFuncByName("open")
	id := tab.Instantiate("x", "fd", fOpen)
	if !tab.Accepting(id) {
		t.Error("open(fd) should be accepting (Opened)")
	}
}

func TestFacadeBankAndTerms(t *testing.T) {
	prop := rasc.MustCompileSpec(`
accept start state S : | s -> S;
`)
	sig := rasc.NewSignature()
	c := sig.MustDeclare("c", 0)
	o := sig.MustDeclare("o", 1)
	sys := rasc.NewSystem(rasc.FuncAlgebra{Mon: prop.Mon}, sig, rasc.Options{})
	x, y := sys.Var("x"), sys.Var("y")
	sys.AddLowerE(sys.Constant(c), x)
	sys.AddLowerE(sys.Cons(o, x), y)
	sys.Solve()
	bank := rasc.NewBank(sig)
	terms := sys.TermsIn(y, bank, 3, 0)
	if len(terms) != 1 {
		t.Fatalf("terms = %d, want 1", len(terms))
	}
	if got := bank.String(terms[0], prop.Mon); got == "" {
		t.Error("term rendering empty")
	}
}
