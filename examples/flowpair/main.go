// Flowpair: the §7 flow analysis on the Figure 11 program. Function call
// matching is context-free (one constructor per instantiation site); pair
// construction/projection matching is regular (bracket annotations bounded
// by the largest type, Figure 10). Both the primal analysis and the §7.6
// dual (roles swapped) derive that B flows to V and A does not.
package main

import (
	"fmt"

	"rasc/internal/flow"
)

// Figure 11, with the paper's labels: pair's body is (1^A, y^Y)^P and
// main projects the second component of pair@i 2^B into V.
const program = `
pair (y : int) : b = (1^A, y^Y)^P;
main () : int = (pair@i 2^B).2^V;
`

func main() {
	primal := flow.MustAnalyze(program)
	fmt.Printf("primal: largest type depth %d, bracket machine |F^≡| = %d\n",
		primal.MaxDepth, primal.Mon.Size())
	for _, q := range [][2]string{{"B", "V"}, {"A", "V"}, {"B", "Y"}} {
		ok, err := primal.Flows(q[0], q[1])
		if err != nil {
			panic(err)
		}
		pn, err := primal.FlowsPN(q[0], q[1])
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %s -> %s: matched=%v, partially-matched=%v\n", q[0], q[1], ok, pn)
	}

	dual := flow.MustAnalyzeDual(program)
	fmt.Printf("dual (§7.6): call-depth bound %d, |F^≡| = %d\n", dual.CallDepth, dual.Mon.Size())
	for _, q := range [][2]string{{"B", "V"}, {"A", "V"}} {
		ok, err := dual.Flows(q[0], q[1])
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %s -> %s: %v\n", q[0], q[1], ok)
	}

	// Polymorphic recursion (primal only): recursion does not conflate
	// instantiation sites.
	rec := flow.MustAnalyze(`
rec (x : int) : int = rec@r x;
main () : int = (rec@1 1^One, rec@2 2^Two)^P;
`)
	oneTwo, _ := rec.Flows("One", "Two")
	fmt.Printf("polymorphic recursion: One -> Two = %v (call sites stay apart)\n", oneTwo)
}
