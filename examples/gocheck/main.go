// Gocheck: model-check real Go source with regularly annotated set
// constraints. The double-lock property is parametric in the mutex
// (§6.4's substitution environments label each receiver separately), and
// defer is handled by expansion at every return.
package main

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/gosrc"
)

const buggy = `
package demo

import "sync"

var mu sync.Mutex

func risky() {
	mu.Lock()
	if shortcut() {
		return // forgot to unlock on this path
	}
	mu.Unlock()
}

func main() {
	risky()
	mu.Lock() // deadlocks when risky took the shortcut
	mu.Unlock()
}
`

const fixed = `
package demo

import "sync"

var mu sync.Mutex

func safe() {
	mu.Lock()
	defer mu.Unlock()
	if shortcut() {
		return // the deferred unlock covers this path
	}
	work()
}

func main() {
	safe()
	mu.Lock()
	mu.Unlock()
}
`

const twoMutexes = `
package demo

import "sync"

var a, b sync.Mutex

func main() {
	a.Lock()
	b.Lock() // a different mutex: not a double lock
	b.Unlock()
	a.Unlock()
}
`

func main() {
	for _, c := range []struct{ name, src string }{
		{"buggy", buggy}, {"fixed (defer)", fixed}, {"two mutexes", twoMutexes},
	} {
		res, err := gosrc.Check(c.src, gosrc.DoubleLockProperty(), gosrc.DoubleLockEvents(), "main", core.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s: %d violation(s)\n", c.name, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("   %s (mutex %s)\n", v.String(), v.Label)
			for _, tp := range v.Trace {
				fmt.Printf("      via %s:%d\n", tp.Fn, tp.Line)
			}
		}
	}

	// File-leak checking with the same machinery.
	leaky := `
package demo

import "os"

func main() {
	f, err := os.Open("a.txt")
	if err != nil {
		return
	}
	g, _ := os.Open("b.txt")
	g.Close()
	use(f)
}
`
	res, err := gosrc.Check(leaky, gosrc.FileLeakProperty(), gosrc.FileLeakEvents(), "main", core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("== file leak: possibly open at exit:", res.OpenInstancesAtExit("main"))
}
