// Filestate: the §6.4 parametric annotations example (Figure 6). One
// automaton (Figure 5) tracks open/close per file descriptor; the solver
// instantiates it lazily per descriptor with substitution environments,
// determining that fd2 is still open at the end of the program but fd1 is
// not.
package main

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/pdm"
	"rasc/internal/spec"
)

const fileSpec = `
# Figure 5: file state, parametric in the descriptor x.
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;
`

const program = `
void main() {
    int fd1 = open("file1", O_RDONLY);  // s1
    int fd2 = open("file2", O_RDONLY);  // s2
    close(fd1);                          // s3
}
`

func main() {
	prop := spec.MustCompile(fileSpec)
	fmt.Printf("parametric property: %v (parameter of open: %q)\n",
		prop.IsParametric(), prop.ParamOf["open"])

	res, err := pdm.Check(minic.MustParse(program), prop, minic.FileEvents(), "", core.Options{})
	if err != nil {
		panic(err)
	}
	open := res.OpenInstancesAtExit("")
	fmt.Println("descriptors still open at exit:", open) // [fd2]

	// The same query after adding the missing close.
	fixedSrc := `
void main() {
    int fd1 = open("file1", O_RDONLY);
    int fd2 = open("file2", O_RDONLY);
    close(fd1);
    close(fd2);
}
`
	res2, err := pdm.Check(minic.MustParse(fixedSrc), prop, minic.FileEvents(), "", core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("after the fix:", res2.OpenInstancesAtExit("")) // []

	// Parameter labels are syntactic name/label pairs (§6.4): a helper
	// closing its *own* parameter name creates the instance (x:fd), which
	// is a different instance from (x:fd1) — so the analysis (like
	// name-based parametric checkers generally) still reports fd1 open.
	// Renaming the parameter to match, or inlining, resolves it.
	helperSrc := `
void cleanup(int fd) {
    close(fd);
}
void main() {
    int fd1 = open("file1", O_RDONLY);
    cleanup(fd1);
}
`
	res3, err := pdm.Check(minic.MustParse(helperSrc), prop, minic.FileEvents(), "", core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("helper-close with a renamed parameter, open at exit:", res3.OpenInstancesAtExit(""))
	fmt.Println("(labels are syntactic name/label pairs; the helper's close(fd) names a different instance)")
}
