// Quickstart: build a property automaton, generate a few annotated
// constraints by hand, solve, and query — the smallest end-to-end use of
// the library (Example 2.4 of the paper, over the 1-bit gen/kill language
// of Figure 1).
package main

import (
	"fmt"

	"rasc"
)

func main() {
	// The 1-bit machine M_1bit: g turns the fact on, k turns it off; a
	// word is accepted when the fact ends up on. Symbols not mentioned
	// in a state self-loop.
	prop := rasc.MustCompileSpec(`
start state Off :
    | g -> On;

accept state On :
    | k -> Off;
`)
	fmt.Printf("automaton: %d states; representative functions |F^≡| = %d\n",
		prop.Machine.NumStates, prop.Mon.Size()) // 3: f_ε, f_g, f_k

	// Constructors: a constant c and a unary o (Example 2.4).
	sig := rasc.NewSignature()
	cCons := sig.MustDeclare("c", 0)
	oCons := sig.MustDeclare("o", 1)

	sys := rasc.NewSystem(rasc.FuncAlgebra{Mon: prop.Mon}, sig, rasc.Options{})
	W, X, Y, Z := sys.Var("W"), sys.Var("X"), sys.Var("Y"), sys.Var("Z")

	g, _ := prop.Mon.SymbolFuncByName("g")
	fg := rasc.Annot(g)

	c := sys.Constant(cCons)
	sys.AddLower(c, W, fg)                  // c ⊆^g W
	sys.AddLower(sys.Cons(oCons, W), X, fg) // o(W) ⊆^g X
	sys.AddUpperE(X, sys.Cons(oCons, Y))    // X ⊆ o(Y)
	sys.AddLowerE(sys.Cons(oCons, Y), Z)    // o(Y) ⊆ Z
	sys.Solve()

	// The structural rule derives W ⊆^g Y, and the transitive-closure
	// rule composes f_g ∘ f_g = f_g, so c is in Y annotated f_g — an
	// accepting function (g ∈ L(M)).
	fmt.Println("c entailed in W:", sys.ConstEntailed(c, W)) // true
	fmt.Println("c entailed in Y:", sys.ConstEntailed(c, Y)) // true
	fmt.Println("c entailed in Z:", sys.ConstEntailed(c, Z)) // false: c is inside o(...) in Z

	// Enumerate Z's least solution: the annotated term o^g(c^g).
	bank := rasc.NewBank(sig)
	for _, t := range sys.TermsIn(Z, bank, 3, 0) {
		fmt.Println("Z contains:", bank.String(t, prop.Mon))
	}

	st := sys.Stats()
	fmt.Printf("solved: %d vars, %d facts, %d edges\n", st.Vars, st.Reach, st.Edges)
}
