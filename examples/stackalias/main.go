// Stackalias: the §7.5 stack-aware alias query. foo is called twice with
// its arguments swapped; a context-insensitive points-to comparison says x
// and y may alias, but intersecting the constraint *solutions* — terms
// whose constructors record the call stack — proves they cannot.
//
// The C program being modeled:
//
//	void main() {
//	    int a, b;
//	    foo¹(&a, &b);   // constructor o1
//	    foo²(&b, &a);   // constructor o2
//	}
//	void foo(int *x, int *y) { /* may x and y alias? */ }
package main

import (
	"fmt"

	"rasc"
	"rasc/internal/core"
	"rasc/internal/flow"
	"rasc/internal/minic"
	"rasc/internal/pointsto"
)

func main() {
	// First, straight from source with the points-to analysis package.
	prog := minic.MustParse(`
void foo(int *x, int *y) {
    nop(x, y);
}
void main() {
    int a;
    int b;
    foo(&a, &b);
    foo(&b, &a);
}
`)
	res := pointsto.MustAnalyze(prog, core.Options{})
	fmt.Println("from source:")
	fmt.Println("  pt(foo.x) =", res.PointsTo("foo", "x"))
	fmt.Println("  pt(foo.y) =", res.PointsTo("foo", "y"))
	fmt.Println("  location may-alias:  ", res.MayAlias("foo", "x", "foo", "y"))
	fmt.Println("  stack-aware may-alias:", res.MayAliasStackAware("foo", "x", "foo", "y"))
	fmt.Println()

	// And the same query built from raw constraints, to show the encoding.
	fmt.Println("raw constraint encoding:")
	rawEncoding()
}

func rawEncoding() {
	sig := rasc.NewSignature()
	locA := sig.MustDeclare("a", 0)
	locB := sig.MustDeclare("b", 0)
	o1 := sig.MustDeclare("o1", 1)
	o2 := sig.MustDeclare("o2", 1)

	sys := rasc.NewSystem(rasc.TrivialAlgebra{}, sig, rasc.Options{})
	// The actual arguments at each call site.
	a1, b1 := sys.Var("arg1@site1"), sys.Var("arg2@site1")
	a2, b2 := sys.Var("arg1@site2"), sys.Var("arg2@site2")
	x, y := sys.Var("x"), sys.Var("y")
	sys.AddLowerE(sys.Constant(locA), a1)
	sys.AddLowerE(sys.Constant(locB), b1)
	sys.AddLowerE(sys.Constant(locB), a2)
	sys.AddLowerE(sys.Constant(locA), b2)
	// Parameters receive the per-site wrapped arguments.
	sys.AddLowerE(sys.Cons(o1, a1), x)
	sys.AddLowerE(sys.Cons(o2, a2), x)
	sys.AddLowerE(sys.Cons(o1, b1), y)
	sys.AddLowerE(sys.Cons(o2, b2), y)
	sys.Solve()

	bank := rasc.NewBank(sig)
	fmt.Println("pt(x):")
	for _, t := range sys.TermsIn(x, bank, 3, 0) {
		fmt.Println("  ", bank.String(t, nil))
	}
	fmt.Println("pt(y):")
	for _, t := range sys.TermsIn(y, bank, 3, 0) {
		fmt.Println("  ", bank.String(t, nil))
	}

	locAlias := flow.LocationAlias(sys, x, y, bank, 3, 0)
	stackAlias, common := flow.StackAwareAlias(sys, x, y, bank, 3, 0)
	fmt.Printf("\nlocation-based (context-insensitive) may-alias: %v\n", locAlias)
	fmt.Printf("stack-aware may-alias:                          %v (common terms: %d)\n",
		stackAlias, len(common))
	fmt.Println("\nthe solutions themselves encode context-sensitive points-to sets (§7.5):")
	fmt.Println("x={o1(a),o2(b)} and y={o1(b),o2(a)} share locations but no terms.")
}
