// Privilege: the §6.3 pushdown model checking example. A setuid program
// acquires root, drops privilege on only one branch, and then execs a
// shell — the classic bug MOPS was built to find. We check it with the
// constraint engine and with the baseline post* checker, then fix it and
// check again.
package main

import (
	"fmt"

	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/mops"
	"rasc/internal/pdm"
)

const buggy = `
void main() {
    seteuid(0);                // s1: acquire privilege
    if (cond) {
        seteuid(getuid());     // s3: drop privilege (one branch only!)
    } else {
        log_attempt();         // s4
    }
    execl("/bin/sh", "sh");    // s5: exec — privileged on the else path
}
`

const fixed = `
void main() {
    seteuid(0);
    if (cond) {
        seteuid(getuid());
    } else {
        log_attempt();
        seteuid(getuid());
    }
    execl("/bin/sh", "sh");
}
`

func main() {
	prop := pdm.SimplePrivilegeProperty()
	events := minic.PrivilegeEvents()

	for _, c := range []struct {
		name, src string
	}{{"buggy", buggy}, {"fixed", fixed}} {
		prog := minic.MustParse(c.src)

		res, err := pdm.Check(prog, prop, events, "", core.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s (constraint engine): %d violation(s)\n", c.name, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("  ", v)
			for _, tp := range v.Trace {
				fmt.Printf("      via %s:%d\n", tp.Fn, tp.Line)
			}
		}

		mres, err := mops.Check(prog, prop, events, "")
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s (post* baseline): violating=%v\n\n", c.name, mres.Violating)
	}

	// The full Table 1 property is stricter: even the "fixed" program
	// only drops the effective uid, keeping the saved uid root and the
	// supplementary groups — still flagged.
	full := pdm.FullPrivilegeProperty()
	res, err := pdm.Check(minic.MustParse(fixed), full, pdm.FullPrivilegeEvents(), "", core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fixed program under the full 11-state property: %d violation(s) (temporary drops are not enough)\n",
		len(res.Violations))
}
