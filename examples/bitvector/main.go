// Bitvector: interprocedural gen/kill dataflow (§3.3) as annotated
// constraints — a taint analysis where source() generates a fact per
// variable, sanitize() kills it and sink() checks it — cross-validated
// against the classic summary-based iterative engine.
//
// Facts are named syntactically (by variable name), as in the paper's
// parametric annotations: the parameter/label pairs of §6.4 correlate
// occurrences of the same name.
package main

import (
	"fmt"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/minic"
	"rasc/internal/monoid"
)

const program = `
void consume(int t) {
    sink(t);              // t is the caller's tainted value
}
void main() {
    int p = source();
    int q = source();
    sanitize(p);
    sink(p);              // safe: p was sanitized
    sink(q);              // violation: q is still tainted
    int t = source();
    consume(t);           // violation inside consume (same fact name)
}
`

func main() {
	// The 1-bit gen/kill machine (Figure 1) has |F^≡| = 3; the n-bit
	// product machine grows as 3^n (§3.3) — the parametric encoding used
	// below tracks facts per name instead, avoiding the blowup.
	for _, n := range []int{1, 2, 3, 4} {
		m, err := monoid.Build(bitvector.Machine(n), 1<<20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d-bit machine: %4d states, |F^≡| = %d\n", n, 1<<uint(n), m.Size())
	}

	prog := minic.MustParse(program)
	res, err := bitvector.Check(prog, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nconstraint engine: %d violation(s)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  %s:%d tainted use of %s\n", v.Fn, v.Line, v.Label)
	}

	iter, err := bitvector.CheckIterative(prog)
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterative baseline: %d violation(s)\n", len(iter.Violations))
	for _, v := range iter.Violations {
		fmt.Printf("  %s:%d tainted use of %s\n", v.Fn, v.Line, v.Label)
	}
}
