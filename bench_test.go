// Benchmark harness regenerating every table and figure experiment of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded results):
//
//	BenchmarkTable1_*            Table 1: privilege checking, constraint
//	                             engine vs post* baseline, 4 package sizes
//	BenchmarkFig1_OneBitSolve    Figure 1 / §3.3: gen-kill solving
//	BenchmarkFig2_Adversarial    Figure 2 / §4: superexponential monoid
//	BenchmarkSec33_BitvectorMonoid  §3.3: 3^n representative functions
//	BenchmarkSec5_*              §5: bidirectional vs forward vs backward
//	BenchmarkSec64_Parametric    §6.4: substitution environments at scale
//	BenchmarkSec7_BracketDepth   §7 / Figure 10: bracket machines by depth
//	BenchmarkAblation_*          §8's implementation techniques on/off
package rasc

import (
	"fmt"
	"testing"

	"rasc/internal/bitvector"
	"rasc/internal/core"
	"rasc/internal/flow"
	"rasc/internal/minic"
	"rasc/internal/monoid"
	"rasc/internal/mops"
	"rasc/internal/pdm"
	"rasc/internal/synth"
	"rasc/internal/terms"
)

// --- Table 1 ---------------------------------------------------------------

func benchTable1Row(b *testing.B, row synth.Named, engine string) {
	prop := pdm.FullPrivilegeProperty()
	events := pdm.FullPrivilegeEvents()
	// Parse outside the timer: Table 1 reports checking time, and MOPS's
	// own C front end is likewise not what was measured.
	progs := make([]*minic.Program, row.Programs)
	for p := range progs {
		cfg := row.Config
		cfg.Seed += int64(p) * 1000
		progs[p] = minic.MustParse(synth.Generate(cfg))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prog := range progs {
			switch engine {
			case "rasc":
				if _, err := pdm.Check(prog, prop, events, "", core.Options{}); err != nil {
					b.Fatal(err)
				}
			case "mops":
				if _, err := mops.Check(prog, prop, events, ""); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for _, row := range synth.Table1() {
		for _, engine := range []string{"rasc", "mops"} {
			b.Run(fmt.Sprintf("%s/%s", sanitize(row.Name), engine), func(b *testing.B) {
				benchTable1Row(b, row, engine)
			})
		}
	}
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r == ' ' || r == '.' {
			out[i] = '_'
		}
	}
	return string(out)
}

// --- Figure 1 / §3.3: the 1-bit gen/kill language ---------------------------

// BenchmarkFig1_OneBitSolve solves a long annotated chain over M_1bit:
// the composition table makes each transitive step O(1).
func BenchmarkFig1_OneBitSolve(b *testing.B) {
	mon, err := monoid.Build(bitvector.OneBit(), 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sig := terms.NewSignature()
				c := sig.MustDeclare("c", 0)
				s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{})
				fg, _ := mon.SymbolFuncByName("g0")
				fk, _ := mon.SymbolFuncByName("k0")
				prev := s.Var("v0")
				s.AddLowerE(s.Constant(c), prev)
				for j := 1; j <= n; j++ {
					cur := s.Fresh("v")
					a := core.Annot(mon.Identity())
					switch j % 3 {
					case 0:
						a = core.Annot(fg)
					case 1:
						a = core.Annot(fk)
					}
					s.AddVar(prev, cur, a)
					prev = cur
				}
				s.Solve()
			}
		})
	}
}

// --- Figure 2 / §4: adversarial machine ------------------------------------

// BenchmarkFig2_Adversarial builds F_M^≡ for the rotate/swap/merge
// machine: |F^≡| = |S|^|S| (4^4 = 256, 5^5 = 3125), the worst case that
// motivates the unidirectional strategies of §5.
func BenchmarkFig2_Adversarial(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("states-%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				m, err := monoid.Build(monoid.Adversarial(n), 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				size = m.Size()
			}
			b.ReportMetric(float64(size), "|F|")
		})
	}
}

// --- §3.3: n-bit product machines ------------------------------------------

func BenchmarkSec33_BitvectorMonoid(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("bits-%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				m, err := monoid.Build(bitvector.Machine(n), 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				size = m.Size()
			}
			b.ReportMetric(float64(size), "|F|")
		})
	}
}

// --- §5: solving strategies --------------------------------------------------

// strategyWorkload builds a dense annotated system over the adversarial
// machine, where bidirectional solving derives up to |F| annotations per
// (source, variable) pair but forward solving only |S| (states) and
// backward only left-congruence classes.
func strategyWorkload(mon *monoid.Monoid, nVars int) (*core.System, core.CNode, []core.VarID) {
	sig := terms.NewSignature()
	c := sig.MustDeclare("c", 0)
	s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{})
	vars := make([]core.VarID, nVars)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	cn := s.Constant(c)
	s.AddLowerE(cn, vars[0])
	rot, _ := mon.SymbolFuncByName("rotate")
	swp, _ := mon.SymbolFuncByName("swap")
	mrg, _ := mon.SymbolFuncByName("merge")
	syms := []core.Annot{core.Annot(rot), core.Annot(swp), core.Annot(mrg)}
	for i := 0; i < nVars; i++ {
		for j, a := range syms {
			s.AddVar(vars[i], vars[(i+j+1)%nVars], a)
		}
	}
	return s, cn, vars
}

func BenchmarkSec5_Bidirectional(b *testing.B) {
	mon, err := monoid.Build(monoid.Adversarial(4), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("vars-%d", n), func(b *testing.B) {
			var facts int
			for i := 0; i < b.N; i++ {
				s, _, _ := strategyWorkload(mon, n)
				s.Solve()
				facts = s.Stats().Reach
			}
			b.ReportMetric(float64(facts), "facts")
		})
	}
}

func BenchmarkSec5_Forward(b *testing.B) {
	mon, err := monoid.Build(monoid.Adversarial(4), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("vars-%d", n), func(b *testing.B) {
			var facts int
			for i := 0; i < b.N; i++ {
				s, _, _ := strategyWorkload(mon, n)
				fw, err := s.SolveForward(nil)
				if err != nil {
					b.Fatal(err)
				}
				facts = fw.Facts()
			}
			b.ReportMetric(float64(facts), "facts")
		})
	}
}

func BenchmarkSec5_Backward(b *testing.B) {
	mon, err := monoid.Build(monoid.Adversarial(4), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("vars-%d", n), func(b *testing.B) {
			var facts int
			for i := 0; i < b.N; i++ {
				s, _, vars := strategyWorkload(mon, n)
				bw, err := s.SolveBackward(vars[:1])
				if err != nil {
					b.Fatal(err)
				}
				facts = bw.Facts()
			}
			b.ReportMetric(float64(facts), "facts")
		})
	}
}

// --- §6.4: parametric annotations at scale -----------------------------------

// BenchmarkSec64_Parametric checks the file-state property on programs
// with many distinct descriptors: the lazily-built product (substitution
// environments) versus what an explicit product automaton would cost
// (2^n states).
func BenchmarkSec64_Parametric(b *testing.B) {
	prop := bitvector.TaintProperty()
	_ = prop
	for _, n := range []int{8, 32, 128} {
		src := synth.GenerateTaint(synth.TaintConfig{
			Seed: 9, Functions: 4, StmtsPerFn: 10, CallProb: 0.1,
			Tainted: n / 2, Cleaned: n / 2,
		})
		prog := minic.MustParse(src)
		b.Run(fmt.Sprintf("facts-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bitvector.Check(prog, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec64_IterativeBaseline is the classic engine on the same
// workloads.
func BenchmarkSec64_IterativeBaseline(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		src := synth.GenerateTaint(synth.TaintConfig{
			Seed: 9, Functions: 4, StmtsPerFn: 10, CallProb: 0.1,
			Tainted: n / 2, Cleaned: n / 2,
		})
		prog := minic.MustParse(src)
		b.Run(fmt.Sprintf("facts-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bitvector.CheckIterative(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §7 / Figure 10: bracket machines by type depth ---------------------------

func BenchmarkSec7_BracketDepth(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("depth-%d", d), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				m, err := monoid.Build(flow.BracketMachine(d), 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				size = m.Size()
			}
			b.ReportMetric(float64(size), "|F|")
		})
	}
}

// BenchmarkSec7_FlowAnalysis runs the full §7 analysis on nested-pair
// programs of growing depth (the §9 observation: the bidirectional
// monoid grows with the largest type).
func BenchmarkSec7_FlowAnalysis(b *testing.B) {
	mkProgram := func(depth int) string {
		// main () : int = ((((1^In, 2), 3), ...)^Outer).1.1...^Out;
		expr := "1^In"
		for i := 0; i < depth; i++ {
			expr = fmt.Sprintf("(%s, %d)", expr, i+2)
		}
		projs := ""
		for i := 0; i < depth; i++ {
			projs += ".1"
		}
		return fmt.Sprintf("main () : int = (%s)%s^Out;\n", expr, projs)
	}
	for _, d := range []int{1, 2, 3} {
		src := mkProgram(d)
		b.Run(fmt.Sprintf("depth-%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := flow.Analyze(src, flow.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ok, err := a.Flows("In", "Out")
				if err != nil || !ok {
					b.Fatalf("flow lost at depth %d: %v", d, err)
				}
			}
		})
	}
}

// --- §8 ablations -------------------------------------------------------------

// ablationWorkload is a loop- and call-heavy program where the
// implementation techniques of §8 matter.
func ablationWorkload() *minic.Program {
	return minic.MustParse(synth.Generate(synth.Config{
		Seed: 77, Functions: 30, StmtsPerFn: 60, CallProb: 0.2,
		BranchProb: 0.2, LoopProb: 0.15, SafePatterns: 6, UnsafePatterns: 2,
	}))
}

func benchAblation(b *testing.B, opts core.Options) {
	prog := ablationWorkload()
	prop := pdm.SimplePrivilegeProperty()
	events := minic.PrivilegeEvents()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdm.Check(prog, prop, events, "", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_AllOn(b *testing.B) { benchAblation(b, core.Options{}) }
func BenchmarkAblation_NoCycleElim(b *testing.B) {
	benchAblation(b, core.Options{NoCycleElim: true})
}
func BenchmarkAblation_NoProjMerge(b *testing.B) {
	benchAblation(b, core.Options{NoProjMerge: true})
}
func BenchmarkAblation_NoHashCons(b *testing.B) {
	benchAblation(b, core.Options{NoHashCons: true})
}
func BenchmarkAblation_NoWitness(b *testing.B) {
	benchAblation(b, core.Options{NoWitness: true})
}
func BenchmarkAblation_AllOff(b *testing.B) {
	benchAblation(b, core.Options{NoCycleElim: true, NoProjMerge: true, NoHashCons: true, NoWitness: true})
}

// --- §8 micro-ablations -------------------------------------------------------
//
// The whole-program ablations above are dominated by the CFG workload's
// shape; these micro-benchmarks isolate constraint patterns where each
// §8 technique is known to matter (the redundancy-heavy graphs of the
// cycle elimination and projection merging papers).

// BenchmarkAblationMicro_CycleElim: chains of small ε-cycles. With
// collapsing, each cycle is one variable and every fact is stored once;
// without, every member of every cycle holds its own copy.
func benchCycleElim(b *testing.B, disable bool) {
	mon, err := monoid.Build(monoid.Adversarial(3), 0)
	if err != nil {
		b.Fatal(err)
	}
	rot, _ := mon.SymbolFuncByName("rotate")
	for i := 0; i < b.N; i++ {
		sig := terms.NewSignature()
		s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{NoCycleElim: disable})
		const cycles = 150
		const size = 4
		var heads []core.VarID
		prev := core.VarID(-1)
		for c := 0; c < cycles; c++ {
			var ring []core.VarID
			for j := 0; j < size; j++ {
				ring = append(ring, s.Fresh("r"))
			}
			for j := 0; j < size; j++ {
				s.AddVarE(ring[j], ring[(j+1)%size])
			}
			if prev >= 0 {
				s.AddVar(prev, ring[0], core.Annot(rot))
			}
			heads = append(heads, ring[0])
			prev = ring[0]
		}
		// Many distinctly-annotated sources at the head.
		for k := 0; k < 12; k++ {
			c := sig.MustDeclare(fmt.Sprintf("c%d", k), 0)
			s.AddLower(s.Constant(c), heads[0], core.Annot(monoid.FuncID(k%mon.Size())))
		}
		s.Solve()
	}
}

func BenchmarkAblationMicro_CycleElimOn(b *testing.B)  { benchCycleElim(b, false) }
func BenchmarkAblationMicro_CycleElimOff(b *testing.B) { benchCycleElim(b, true) }

// BenchmarkAblationMicro_ProjMerge: one variable with many constructed
// sources and many projection sinks. Merging turns K×M rule firings into
// K+M.
func benchProjMerge(b *testing.B, disable bool) {
	mon, err := monoid.Build(monoid.Adversarial(3), 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sig := terms.NewSignature()
		pair := sig.MustDeclare("pair", 2)
		a := sig.MustDeclare("a", 0)
		s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{NoProjMerge: disable})
		y := s.Var("Y")
		const k, m = 80, 80
		for j := 0; j < k; j++ {
			x1, x2 := s.Fresh("x1"), s.Fresh("x2")
			s.AddLowerE(s.Constant(a), x1)
			s.AddLower(s.Cons(pair, x1, x2), y, core.Annot(monoid.FuncID(j%mon.Size())))
		}
		for j := 0; j < m; j++ {
			s.AddProjE(pair, 0, y, s.Fresh("z"))
		}
		s.Solve()
	}
}

func BenchmarkAblationMicro_ProjMergeOn(b *testing.B)  { benchProjMerge(b, false) }
func BenchmarkAblationMicro_ProjMergeOff(b *testing.B) { benchProjMerge(b, true) }

// BenchmarkAblationMicro_HashCons: the same constructor expression used
// as an upper bound over and over; hash-consing dedups the sinks.
func benchHashCons(b *testing.B, disable bool) {
	mon, err := monoid.Build(monoid.Adversarial(3), 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sig := terms.NewSignature()
		pair := sig.MustDeclare("pair", 2)
		a := sig.MustDeclare("a", 0)
		s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{NoHashCons: disable})
		x := s.Var("X")
		t1, t2 := s.Var("T1"), s.Var("T2")
		for k := 0; k < 30; k++ {
			src1, src2 := s.Fresh("s1"), s.Fresh("s2")
			s.AddLowerE(s.Constant(a), src1)
			s.AddLower(s.Cons(pair, src1, src2), x, core.Annot(monoid.FuncID(k%mon.Size())))
		}
		for k := 0; k < 200; k++ {
			s.AddUpperE(x, s.Cons(pair, t1, t2))
		}
		s.Solve()
	}
}

func BenchmarkAblationMicro_HashConsOn(b *testing.B)  { benchHashCons(b, false) }
func BenchmarkAblationMicro_HashConsOff(b *testing.B) { benchHashCons(b, true) }

// BenchmarkAblationMicro_DeadPrune: §3.1's "no work need be done
// propagating annotations that are necessarily non-accepting" — a dense
// annotated mesh over the bracket alphabet, where most compositions are
// dead classes, solved with and without pruning.
func BenchmarkAblationMicro_DeadPrune(b *testing.B) {
	mon, err := monoid.Build(flow.BracketMachine(2), 0)
	if err != nil {
		b.Fatal(err)
	}
	dead := 0
	for f := 0; f < mon.Size(); f++ {
		if mon.Dead(monoid.FuncID(f)) {
			dead++
		}
	}
	b.Logf("depth-2 bracket monoid: %d/%d classes dead", dead, mon.Size())
	for _, prune := range []bool{true, false} {
		name := "off"
		if prune {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var facts int
			for i := 0; i < b.N; i++ {
				sig := terms.NewSignature()
				c := sig.MustDeclare("c", 0)
				s := core.NewSystem(core.FuncAlgebra{Mon: mon}, sig, core.Options{PruneDead: prune})
				// A dense annotated mesh over the bracket alphabet: most
				// compositions are dead.
				const n = 40
				vars := make([]core.VarID, n)
				for j := range vars {
					vars[j] = s.Fresh("v")
				}
				s.AddLowerE(s.Constant(c), vars[0])
				syms := mon.M.Alpha.Names()
				for j := 0; j < n; j++ {
					for k := 1; k <= 3; k++ {
						f, _ := mon.SymbolFuncByName(syms[(j+k)%len(syms)])
						s.AddVar(vars[j], vars[(j+k)%n], core.Annot(f))
					}
				}
				s.Solve()
				facts = s.Stats().Reach
			}
			b.ReportMetric(float64(facts), "facts")
		})
	}
}

// BenchmarkSec76_Clustering: §7.6 notes that one binary pair constructor
// can outperform two unary field constructors, because each structural
// meet derives both component edges at once. Encode heavy pair traffic
// both ways and compare.
func benchClustering(b *testing.B, clustered bool) {
	for i := 0; i < b.N; i++ {
		sig := terms.NewSignature()
		a := sig.MustDeclare("a", 0)
		s := core.NewSystem(core.TrivialAlgebra{}, sig, core.Options{})
		const pairs = 300
		if clustered {
			pair := sig.MustDeclare("pair", 2)
			for j := 0; j < pairs; j++ {
				x1, x2, y := s.Fresh("x1"), s.Fresh("x2"), s.Fresh("y")
				s.AddLowerE(s.Constant(a), x1)
				s.AddLowerE(s.Cons(pair, x1, x2), y)
				s.AddProjE(pair, 0, y, s.Fresh("z1"))
				s.AddProjE(pair, 1, y, s.Fresh("z2"))
			}
		} else {
			o1 := sig.MustDeclare("o1", 1)
			o2 := sig.MustDeclare("o2", 1)
			for j := 0; j < pairs; j++ {
				x1, x2, y := s.Fresh("x1"), s.Fresh("x2"), s.Fresh("y")
				s.AddLowerE(s.Constant(a), x1)
				s.AddLowerE(s.Cons(o1, x1), y)
				s.AddLowerE(s.Cons(o2, x2), y)
				s.AddProjE(o1, 0, y, s.Fresh("z1"))
				s.AddProjE(o2, 0, y, s.Fresh("z2"))
			}
		}
		s.Solve()
	}
}

func BenchmarkSec76_ClusteredPair(b *testing.B) { benchClustering(b, true) }
func BenchmarkSec76_UnaryFields(b *testing.B)   { benchClustering(b, false) }
